#include "store/mode_result_store.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "io/fortran_binary.hpp"
#include "plinger/records.hpp"
#include "store/crc32.hpp"

namespace plinger::store {

namespace fs = std::filesystem;

namespace {

/// File header record: [magic, version, identity_hi, identity_lo, n_k,
/// reserved].  The identity's 32-bit halves are exact as doubles.
constexpr double kMagic = 1347440199.0;  // 0x504C4E47, "PLNG"
constexpr double kVersion = 1.0;
constexpr std::size_t kFileHeaderLength = 6;

/// Reject absurd framing lengths before allocating (a torn tail can
/// leave arbitrary garbage where a length marker should be).
constexpr std::uint32_t kMaxRecordBytes = 1u << 26;

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Reads length-framed records like io::FortranRecordReader, but damage
/// tolerant: instead of throwing on a torn frame it reports `torn`, and
/// it tracks the byte offset of the end of the last good record so the
/// caller can truncate there.
class RawReader {
 public:
  enum class Status { record, eof, torn };

  explicit RawReader(std::istream& is) : is_(is) {}

  Status next(std::vector<double>& out) {
    std::uint32_t head = 0;
    is_.read(reinterpret_cast<char*>(&head), sizeof(head));
    if (is_.gcount() == 0) return Status::eof;
    if (is_.gcount() < static_cast<std::streamsize>(sizeof(head))) {
      return Status::torn;
    }
    if (head == 0 || head % sizeof(double) != 0 || head > kMaxRecordBytes) {
      return Status::torn;
    }
    out.resize(head / sizeof(double));
    is_.read(reinterpret_cast<char*>(out.data()),
             static_cast<std::streamsize>(head));
    if (is_.gcount() < static_cast<std::streamsize>(head)) {
      return Status::torn;
    }
    std::uint32_t tail = 0;
    is_.read(reinterpret_cast<char*>(&tail), sizeof(tail));
    if (is_.gcount() < static_cast<std::streamsize>(sizeof(tail)) ||
        tail != head) {
      return Status::torn;
    }
    offset_ += 2 * sizeof(std::uint32_t) + head;
    return Status::record;
  }

  /// Byte offset just past the last good record.
  std::uint64_t offset() const { return offset_; }

 private:
  std::istream& is_;
  std::uint64_t offset_ = 0;
};

/// True when `v` is an exact non-negative integer below `limit` — i.e.
/// safe to cast to an unsigned integer type of that range.
bool castable_field(double v, double limit) {
  return std::isfinite(v) && v >= 0.0 && v < limit && v == std::floor(v);
}

/// Parse the file header record; throws StoreCorrupt when it is not one.
void parse_file_header(const std::vector<double>& rec, std::uint64_t& id,
                       std::size_t& n_k) {
  if (rec.size() != kFileHeaderLength || rec[0] != kMagic ||
      rec[1] != kVersion) {
    throw StoreCorrupt(
        "ModeResultStore: file is not a version-1 checkpoint journal");
  }
  // The identity halves and grid size travel as doubles; a well-framed
  // but corrupt header (NaN, negative, out of range) must be rejected
  // here — casting it first would be undefined behavior.
  constexpr double kTwo32 = 4294967296.0;
  constexpr double kTwo53 = 9007199254740992.0;
  if (!castable_field(rec[2], kTwo32) || !castable_field(rec[3], kTwo32) ||
      !castable_field(rec[4], kTwo53)) {
    throw StoreCorrupt(
        "ModeResultStore: checkpoint journal header fields are corrupt");
  }
  id = (static_cast<std::uint64_t>(rec[2]) << 32) |
       static_cast<std::uint64_t>(rec[3]);
  n_k = static_cast<std::size_t>(rec[4]);
}

/// Validate and unpack one mode record (21-double header + payload +
/// trailing CRC).  Returns false on any damage — the caller treats the
/// record, and everything after it, as the torn tail.
bool parse_mode_record(const std::vector<double>& rec, std::size_t& ik,
                       boltzmann::ModeResult& result) {
  using parallel::kHeaderLength;
  // Minimum: header + 8-slot preamble + one moment each + CRC.
  if (rec.size() < kHeaderLength + 8 + 2 + 1) return false;
  const std::span<const double> body(rec.data(), rec.size() - 1);
  if (static_cast<double>(crc32_doubles(body)) != rec.back()) return false;
  const std::vector<double> header(rec.begin(),
                                   rec.begin() + kHeaderLength);
  const std::vector<double> payload(rec.begin() + kHeaderLength,
                                    rec.end() - 1);
  // A CRC-clean record of the retired version-2 layout is not damage —
  // treating it as a torn tail would silently drop and recompute it.
  // Refuse the journal loudly instead.
  if (payload.size() >= 8 &&
      payload[7] == parallel::kPayloadWithSamples) {
    throw StoreCorrupt(
        "ModeResultStore: journal holds retired version-2 line-of-sight "
        "records (pre-SourceTable: their Pi column is zero through tight "
        "coupling, so E-mode sources cannot be rebuilt from them) — "
        "delete the journal and rerun the line-of-sight modes instead "
        "of resuming it");
  }
  try {
    result = parallel::unpack_records(header, payload, ik);
  } catch (const Error&) {
    return false;  // inconsistent lengths / ik mismatch
  }
  return true;
}

}  // namespace

ModeResultStore::ModeResultStore(const StoreOptions& opts, RunIdentity id,
                                 std::size_t n_k)
    : opts_(opts), id_(id), n_k_(n_k) {
  PLINGER_REQUIRE(!opts_.path.empty(), "ModeResultStore: empty path");

  // Advisory writer lock, held for the store's lifetime: a second
  // writer (a daemon and a CLI run pointed at the same journal) must
  // fail fast instead of interleaving appends.  Taken before the scan
  // below so no writer ever reads a journal another writer is mutating.
  lock_fd_ = ::open(opts_.path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  PLINGER_REQUIRE(lock_fd_ >= 0,
                  "ModeResultStore: cannot open " + opts_.path);
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    const bool held = errno == EWOULDBLOCK || errno == EAGAIN;
    ::close(lock_fd_);
    lock_fd_ = -1;
    if (held) {
      throw StoreBusy("ModeResultStore: journal " + opts_.path +
                      " is locked by another writer (a daemon or a "
                      "concurrent run); refusing to append concurrently");
    }
    throw StoreWriteError("ModeResultStore: cannot lock " + opts_.path);
  }

  // From here on a throw must release the lock: a failed constructor
  // never runs the destructor.
  try {
    open_journal();
  } catch (...) {
    ::flock(lock_fd_, LOCK_UN);
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw;
  }
}

void ModeResultStore::open_journal() {
  std::error_code ec;
  const std::uint64_t file_size =
      fs::exists(opts_.path, ec) ? fs::file_size(opts_.path, ec) : 0;

  bool fresh = file_size == 0;
  if (!fresh) {
    std::ifstream in(opts_.path, std::ios::binary);
    PLINGER_REQUIRE(in.is_open(),
                    "ModeResultStore: cannot open " + opts_.path);
    RawReader raw(in);
    std::vector<double> rec;
    const auto first = raw.next(rec);
    if (first == RawReader::Status::torn) {
      // Crash before even the file header was flushed: no result can
      // have been recorded, so start over.
      fresh = true;
      torn_tail_recovered_ = true;
    } else {
      PLINGER_REQUIRE(first == RawReader::Status::record,
                      "ModeResultStore: empty journal frame");
      std::uint64_t journal_id = 0;
      std::size_t journal_n_k = 0;
      parse_file_header(rec, journal_id, journal_n_k);
      if (journal_id != id_.value || journal_n_k != n_k_) {
        throw StoreIdentityMismatch(
            "ModeResultStore: journal " + opts_.path + " belongs to run " +
            hex64(journal_id) + " over " + std::to_string(journal_n_k) +
            " modes, but this run is " + hex64(id_.value) + " over " +
            std::to_string(n_k_) +
            " modes; refusing to mix results from different physics");
      }
      std::uint64_t good = raw.offset();
      for (;;) {
        const auto st = raw.next(rec);
        if (st != RawReader::Status::record) break;
        std::size_t ik = 0;
        boltzmann::ModeResult r;
        if (!parse_mode_record(rec, ik, r)) break;
        good = raw.offset();
        if (!in_journal_.insert(ik).second) {
          ++n_duplicates_;
          continue;
        }
        if (opts_.resume) loaded_.emplace(ik, std::move(r));
      }
      in.close();
      if (good < file_size) {
        // Torn tail from a crash mid-write: drop it, keep the prefix.
        fs::resize_file(opts_.path, good);
        torn_tail_recovered_ = true;
      }
    }
  }

  if (fresh) {
    out_.open(opts_.path, std::ios::binary | std::ios::trunc);
    PLINGER_REQUIRE(out_.is_open(),
                    "ModeResultStore: cannot create " + opts_.path);
    write_file_header();
    out_.flush();
    require_writable("file header flush");
  } else {
    out_.open(opts_.path, std::ios::binary | std::ios::app);
    PLINGER_REQUIRE(out_.is_open(),
                    "ModeResultStore: cannot append to " + opts_.path);
  }
}

ModeResultStore::~ModeResultStore() {
  try {
    flush();
  } catch (...) {
    // Destructor: a failed final flush must not terminate the process;
    // the journal simply ends at the last successful flush.
  }
  if (lock_fd_ >= 0) {
    // Close the stream (releasing its buffered state) before dropping
    // the lock, so the next writer never sees a half-flushed tail while
    // we still could have written more.
    out_.close();
    ::flock(lock_fd_, LOCK_UN);
    ::close(lock_fd_);
  }
}

void ModeResultStore::require_writable(const char* when) {
  if (!out_.good()) {
    throw StoreWriteError(
        std::string("ModeResultStore: ") + when + " failed on " +
        opts_.path +
        " (disk full or I/O error); results are no longer being "
        "checkpointed");
  }
}

void ModeResultStore::write_file_header() {
  const double hi = static_cast<double>(id_.value >> 32);
  const double lo = static_cast<double>(id_.value & 0xFFFFFFFFull);
  const std::vector<double> rec = {
      kMagic, kVersion, hi, lo, static_cast<double>(n_k_), 0.0};
  io::FortranRecordWriter writer(out_);
  writer.record(rec);
  require_writable("file header write");
}

void ModeResultStore::append(std::size_t ik,
                             const boltzmann::ModeResult& result) {
  const auto header = parallel::pack_header(ik, result);
  const auto payload = parallel::pack_payload(ik, result);
  std::vector<double> rec;
  rec.reserve(header.size() + payload.size() + 1);
  rec.insert(rec.end(), header.begin(), header.end());
  rec.insert(rec.end(), payload.begin(), payload.end());
  rec.push_back(static_cast<double>(crc32_doubles(rec)));

  const std::lock_guard<std::mutex> lock(mutex_);
  if (!in_journal_.insert(ik).second) {
    // With resume on the drivers only schedule the residual, so a
    // duplicate append is a caller bug.  With resume off they recompute
    // the full schedule over the existing journal; the journal is
    // append-only and the first record wins, so the recompute is
    // absorbed without rewriting.
    PLINGER_REQUIRE(!opts_.resume,
                    "ModeResultStore: ik " + std::to_string(ik) +
                        " already checkpointed");
    ++n_append_skipped_;
    return;
  }
  io::FortranRecordWriter writer(out_);
  writer.record(rec);
  require_writable("append");
  ++n_appended_;
  ++n_unflushed_;
  if (opts_.flush_interval > 0 && n_unflushed_ >= opts_.flush_interval) {
    out_.flush();
    require_writable("flush");
    n_unflushed_ = 0;
  }
  if (opts_.stop_after > 0 && !stop_requested_ &&
      n_appended_ >= opts_.stop_after) {
    out_.flush();  // flush-then-stop: the journal survives the "crash"
    require_writable("flush");
    n_unflushed_ = 0;
    stop_requested_ = true;
  }
}

std::size_t ModeResultStore::n_appended() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return n_appended_;
}

std::size_t ModeResultStore::n_append_skipped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return n_append_skipped_;
}

void ModeResultStore::flush() {
  const std::lock_guard<std::mutex> lock(mutex_);
  out_.flush();
  require_writable("flush");
  n_unflushed_ = 0;
}

bool ModeResultStore::stop_requested() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stop_requested_;
}

JournalScan ModeResultStore::scan(const std::string& path) {
  JournalScan s;
  std::error_code ec;
  const std::uint64_t file_size =
      fs::exists(path, ec) ? fs::file_size(path, ec) : 0;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw StoreCorrupt("ModeResultStore::scan: cannot open " + path);
  }
  RawReader raw(in);
  std::vector<double> rec;
  if (raw.next(rec) != RawReader::Status::record) {
    throw StoreCorrupt("ModeResultStore::scan: no file header in " + path);
  }
  parse_file_header(rec, s.identity.value, s.n_k);
  s.good_bytes = raw.offset();
  for (;;) {
    const auto st = raw.next(rec);
    if (st != RawReader::Status::record) break;
    std::size_t ik = 0;
    boltzmann::ModeResult r;
    if (!parse_mode_record(rec, ik, r)) break;
    s.iks.push_back(ik);
    if (!r.samples.empty()) ++s.n_los_records;
    s.good_bytes = raw.offset();
  }
  s.torn_tail = s.good_bytes < file_size;
  return s;
}

JournalContents read_journal(const std::string& path) {
  JournalContents c;
  std::error_code ec;
  const std::uint64_t file_size =
      fs::exists(path, ec) ? fs::file_size(path, ec) : 0;
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw StoreCorrupt("read_journal: cannot open " + path);
  }
  RawReader raw(in);
  std::vector<double> rec;
  if (raw.next(rec) != RawReader::Status::record) {
    throw StoreCorrupt("read_journal: no file header in " + path);
  }
  parse_file_header(rec, c.identity.value, c.n_k);
  std::uint64_t good = raw.offset();
  for (;;) {
    const auto st = raw.next(rec);
    if (st != RawReader::Status::record) break;
    std::size_t ik = 0;
    boltzmann::ModeResult r;
    if (!parse_mode_record(rec, ik, r)) break;
    good = raw.offset();
    c.results.emplace(ik, std::move(r));  // first record wins
  }
  c.torn_tail = good < file_size;
  return c;
}

}  // namespace plinger::store
