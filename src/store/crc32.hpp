#pragma once

/// CRC-32 (IEEE 802.3 / zlib polynomial 0xEDB88320), used to checksum
/// every mode record in the checkpoint journal.  The Fortran length
/// framing detects a torn tail; the CRC additionally catches bit rot and
/// partially overwritten records whose framing happens to look intact.

#include <cstdint>
#include <span>

namespace plinger::store {

/// CRC of `data`, continuing from `seed` (pass the previous return value
/// to checksum a message in pieces; start from the default).
std::uint32_t crc32(std::span<const unsigned char> data,
                    std::uint32_t seed = 0);

/// Convenience: CRC over the in-memory bytes of a double array.  The
/// journal is a single-host format (like the unit_2 stream it extends),
/// so native byte order is part of the format.
std::uint32_t crc32_doubles(std::span<const double> values,
                            std::uint32_t seed = 0);

}  // namespace plinger::store
