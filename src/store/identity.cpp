#include "store/identity.hpp"

#include <cstring>

#include "boltzmann/config.hpp"
#include "cosmo/params.hpp"

namespace plinger::store {

namespace {

/// FNV-1a 64-bit over a byte stream; doubles are hashed by bit pattern,
/// so any representable change of any input changes the identity.
class Hasher {
 public:
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 0x100000001B3ull;
    }
  }
  void add(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    bytes(&bits, sizeof(bits));
  }
  void add(std::uint64_t v) { bytes(&v, sizeof(v)); }

  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xCBF29CE484222325ull;  // FNV offset basis
};

}  // namespace

RunIdentity run_identity(const cosmo::CosmoParams& params,
                         const boltzmann::PerturbationConfig& cfg,
                         std::span<const double> k_grid, double tau_end,
                         double lmax_cap) {
  Hasher h;
  // Format-version salt: bump when the hashed field set changes, so old
  // journals are rejected rather than silently reinterpreted.
  h.add(std::uint64_t{1});

  // Cosmological model.
  h.add(params.h);
  h.add(params.omega_c);
  h.add(params.omega_b);
  h.add(params.omega_lambda);
  h.add(params.omega_nu);
  h.add(params.t_cmb);
  h.add(params.y_helium);
  h.add(params.n_eff_massless);
  h.add(static_cast<std::uint64_t>(params.n_massive_nu));
  h.add(params.n_s);

  // Perturbation configuration (everything the evolver reads).
  h.add(static_cast<std::uint64_t>(cfg.ic_type));
  h.add(static_cast<std::uint64_t>(cfg.lmax_photon));
  h.add(static_cast<std::uint64_t>(cfg.lmax_polarization));
  h.add(static_cast<std::uint64_t>(cfg.lmax_neutrino));
  h.add(static_cast<std::uint64_t>(cfg.lmax_massive_nu));
  h.add(static_cast<std::uint64_t>(cfg.n_q));
  h.add(cfg.rtol);
  h.add(cfg.atol);
  h.add(cfg.ic_eps);
  h.add(cfg.early_a_factor);
  h.add(cfg.tca_eps);
  h.add(cfg.tca_exit_z);
  // The integrator core changes every trajectory.  Hashed only when it
  // departs from the historical default so every pre-existing dverk
  // journal keeps its stamp (the salt keeps a dop853 run from ever
  // colliding with a hashed-field-set change).
  if (cfg.integrator != boltzmann::IntegratorKind::dverk) {
    h.add(std::uint64_t{3});  // integrator-family salt
    h.add(static_cast<std::uint64_t>(cfg.integrator));
  }

  // The grid and the broadcast physics setup.
  h.add(static_cast<std::uint64_t>(k_grid.size()));
  for (const double k : k_grid) h.add(k);
  h.add(tau_end);
  h.add(lmax_cap);

  return RunIdentity{h.digest()};
}

RunIdentity run_identity(const cosmo::CosmoParams& params,
                         const boltzmann::PerturbationConfig& cfg,
                         std::span<const double> k_grid, double tau_end,
                         double lmax_cap, const LosIdentity& los) {
  Hasher h;
  // Start from the exact base identity so the LOS hash inherits every
  // physics input, then salt with a distinct record-family tag: the
  // same config hashed as hierarchy vs LOS can never collide.
  h.add(run_identity(params, cfg, k_grid, tau_end, lmax_cap).value);
  h.add(std::uint64_t{2});  // LOS record-family salt
  // Record-version salt: version-3 records carry a Pi column the
  // version-2 ones left at zero through tight coupling, so pre-existing
  // LOS journals mismatch here and resume is refused up front.
  h.add(kLosRecordVersion);
  h.add(static_cast<std::uint64_t>(los.lmax_evolve));
  h.add(static_cast<std::uint64_t>(los.sample_taus.size()));
  for (const double t : los.sample_taus) h.add(t);
  // solver=auto: modes below the crossover carry hierarchy-shaped
  // records inside an otherwise-LOS journal, so the routing threshold
  // is part of the identity.  Hashed only when set, preserving every
  // existing solver=los stamp (k_crossover = 0).
  if (los.k_crossover > 0.0) {
    h.add(std::uint64_t{4});  // auto-routing salt
    h.add(los.k_crossover);
    // Rerouted-mode polarization lift: the router now evolves each
    // below-crossover mode's G tower to its full photon tower, so
    // journals recorded before the lift carry shorter towers and must
    // refuse resume rather than mix polarization reaches.
    h.add(std::uint64_t{5});
  }
  return RunIdentity{h.digest()};
}

}  // namespace plinger::store
