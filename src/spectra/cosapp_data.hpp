#pragma once

/// 1994/95-era CMB anisotropy band-power measurements.
///
/// Figure 2 of the paper overlays the PLINGER standard-CDM curve on "the
/// COSAPP software package" compilation of experimental points (COBE,
/// balloon and ground-based experiments) distributed by Dave &
/// Steinhardt at Penn.  That package is not retrievable offline, so this
/// table carries representative values of the same era's published
/// detections (COBE 2-year, FIRS, Tenerife, South Pole 94, Saskatoon,
/// Python, ARGO, MAX, MSAM) as compiled in the contemporary reviews
/// (Steinhardt 1995; Scott, Silk & White 1995).  Central values and
/// errors are approximate at the ~10-20% level — sufficient for the
/// figure's role of bracketing the theory curve — and are documented as
/// a substitution in DESIGN.md.

#include <span>

namespace plinger::spectra {

/// One experimental band power: delta_T = sqrt(l(l+1) C_l / 2 pi) T_cmb
/// in micro-Kelvin at the effective multipole of the experiment's window.
struct BandPowerMeasurement {
  const char* experiment;
  double l_eff;       ///< window center
  double l_lo, l_hi;  ///< approximate window half-power range
  double delta_t_uk;  ///< band power (micro-K); for limits, the 95% bound
  double err_minus, err_plus;  ///< 1-sigma errors (micro-K)
  bool upper_limit;            ///< true for non-detections
};

/// The compiled measurement table (see file comment for provenance).
std::span<const BandPowerMeasurement> cosapp_measurements();

}  // namespace plinger::spectra
