#include "spectra/cl.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace plinger::spectra {

std::vector<double> make_cl_kgrid(std::size_t l_max, double tau0,
                                  double points_per_osc, double k_margin) {
  PLINGER_REQUIRE(l_max >= 2, "make_cl_kgrid: l_max must be >= 2");
  PLINGER_REQUIRE(tau0 > 0.0, "make_cl_kgrid: tau0 must be positive");
  PLINGER_REQUIRE(points_per_osc >= 1.0,
                  "make_cl_kgrid: points_per_osc must be >= 1");
  const double dk = std::numbers::pi / (points_per_osc * tau0);
  const double k_min = 0.25 / tau0;
  const double k_max = k_margin * static_cast<double>(l_max) / tau0;
  std::vector<double> k;
  for (double kk = k_min; kk <= k_max; kk += dk) k.push_back(kk);
  return k;
}

ClAccumulator::ClAccumulator(std::size_t l_max, PowerLawSpectrum primordial)
    : l_max_(l_max),
      primordial_(primordial),
      ct_(l_max + 1, 0.0),
      cp_(l_max + 1, 0.0),
      cx_(l_max + 1, 0.0) {
  PLINGER_REQUIRE(l_max >= 2, "ClAccumulator: l_max must be >= 2");
}

void ClAccumulator::add_mode(double k, double weight_dk,
                             const std::vector<double>& f_gamma) {
  PLINGER_REQUIRE(k > 0.0 && weight_dk > 0.0,
                  "add_mode: k and weight must be positive");
  // C_l += 4 pi P(k) (F_l/4)^2 dk/k.
  const double w = 4.0 * std::numbers::pi * primordial_(k) * weight_dk / k;
  const std::size_t top = std::min(l_max_, f_gamma.size() - 1);
  for (std::size_t l = 2; l <= top; ++l) {
    const double theta = 0.25 * f_gamma[l];
    ct_[l] += w * theta * theta;
  }
  ++n_modes_;
}

void ClAccumulator::add_mode_polarization(
    double k, double weight_dk, const std::vector<double>& g_gamma) {
  // No l >= 2 entry means no contribution (and guards the size()-1
  // underflow an empty vector would hit below).
  if (g_gamma.size() < 3) return;
  const double w = 4.0 * std::numbers::pi * primordial_(k) * weight_dk / k;
  const std::size_t top = std::min(l_max_, g_gamma.size() - 1);
  for (std::size_t l = 2; l <= top; ++l) {
    const double gl = 0.25 * g_gamma[l];
    cp_[l] += w * gl * gl;
  }
  pol_l_max_ = std::max(pol_l_max_, top);
}

void ClAccumulator::add_mode_cross(double k, double weight_dk,
                                   const std::vector<double>& f_gamma,
                                   const std::vector<double>& g_gamma) {
  if (f_gamma.size() < 3 || g_gamma.size() < 3) return;
  const double w = 4.0 * std::numbers::pi * primordial_(k) * weight_dk / k;
  const std::size_t top =
      std::min({l_max_, f_gamma.size() - 1, g_gamma.size() - 1});
  for (std::size_t l = 2; l <= top; ++l) {
    cx_[l] += w * (0.25 * f_gamma[l]) * (0.25 * g_gamma[l]);
  }
}

AngularSpectrum ClAccumulator::cross() const { return AngularSpectrum{cx_}; }

AngularSpectrum ClAccumulator::temperature() const {
  return AngularSpectrum{ct_};
}

AngularSpectrum ClAccumulator::polarization() const {
  return AngularSpectrum{cp_};
}

double normalize_to_cobe_quadrupole(AngularSpectrum& spec, double q_rms_ps,
                                    double t_cmb) {
  PLINGER_REQUIRE(spec.cl.size() > 2 && spec.cl[2] > 0.0,
                  "normalize_to_cobe_quadrupole: C_2 missing");
  const double c2_target = (4.0 * std::numbers::pi / 5.0) *
                           (q_rms_ps / t_cmb) * (q_rms_ps / t_cmb);
  const double factor = c2_target / spec.cl[2];
  for (double& c : spec.cl) c *= factor;
  return factor;
}

}  // namespace plinger::spectra
