#include "spectra/bandpower.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace plinger::spectra {

double band_power_delta_t(const AngularSpectrum& spec, std::size_t l_lo,
                          std::size_t l_hi) {
  PLINGER_REQUIRE(l_lo >= 2 && l_hi >= l_lo, "band_power: bad window");
  const std::size_t top = std::min(l_hi, spec.l_max());
  double num = 0.0, den = 0.0;
  for (std::size_t l = l_lo; l <= top; ++l) {
    const double w = 2.0 * static_cast<double>(l) + 1.0;
    num += w * spec.dl(l);
    den += w;
  }
  PLINGER_REQUIRE(den > 0.0, "band_power: empty window");
  return std::sqrt(num / den);
}

double band_power_gaussian(const AngularSpectrum& spec, double l_eff,
                           double sigma_l) {
  PLINGER_REQUIRE(sigma_l > 0.0, "band_power: sigma_l must be positive");
  double num = 0.0, den = 0.0;
  for (std::size_t l = 2; l <= spec.l_max(); ++l) {
    const double x = (static_cast<double>(l) - l_eff) / sigma_l;
    const double w =
        (2.0 * static_cast<double>(l) + 1.0) * std::exp(-0.5 * x * x);
    num += w * spec.dl(l);
    den += w;
  }
  PLINGER_REQUIRE(den > 0.0, "band_power: empty window");
  return std::sqrt(num / den);
}

}  // namespace plinger::spectra
