#pragma once

/// CMB angular power spectrum assembly.
///
/// LINGER computes the full photon moment hierarchy of every k-mode to
/// the present; the spectrum is then
///
///   C_l = 4 pi \int dln k  P(k) |Theta_l(k, tau0)|^2,
///
/// with Theta_l = F_gamma,l / 4 in the Ma & Bertschinger (1995) Legendre
/// convention (no line-of-sight shortcut — the 1995 method).  The k-grid
/// must resolve the ~pi/tau0 oscillation of Theta_l(k); the paper used up
/// to 5000 k-points for l < 3000.
///
/// Normalization follows the paper's Figure 2: "normalized to the COBE
/// Q_rms-PS", i.e. the quadrupole is pinned to
/// C_2 = (4 pi / 5)(Q_rms-PS / T_cmb)^2.

#include <cstddef>
#include <vector>

#include "spectra/primordial.hpp"

namespace plinger::spectra {

/// A computed spectrum: cl[l] for l = 0..l_max (entries l < 2 are zero).
struct AngularSpectrum {
  std::vector<double> cl;

  std::size_t l_max() const { return cl.empty() ? 0 : cl.size() - 1; }

  /// The conventional band power l(l+1) C_l / (2 pi).
  double dl(std::size_t l) const {
    return static_cast<double>(l) * (static_cast<double>(l) + 1.0) *
           cl[l] / (2.0 * 3.14159265358979323846);
  }
};

/// The k-grid LINGER-style C_l integration uses: uniform spacing
/// dk = pi / (points_per_osc * tau0) from k_min ~ 0.25/tau0 up to
/// k_max ~ margin * l_max / tau0.  Returns ascending k values.
std::vector<double> make_cl_kgrid(std::size_t l_max, double tau0,
                                  double points_per_osc = 2.5,
                                  double k_margin = 1.25);

/// Accumulates C_l from per-mode photon moments as workers deliver them
/// (any order).  Each mode carries its trapezoid weight on the k-grid.
class ClAccumulator {
 public:
  /// l_max: highest multipole of the output spectrum.
  ClAccumulator(std::size_t l_max, PowerLawSpectrum primordial);

  /// Add one mode.  f_gamma[l] = F_gamma,l(k, tau0) for l = 0..lmax(k)
  /// (modes with lmax(k) < l contribute zero there, which is physical:
  /// Theta_l(k) is negligible for l >> k tau0).  weight_dk is the mode's
  /// k-integration weight (trapezoid bin width).
  void add_mode(double k, double weight_dk,
                const std::vector<double>& f_gamma);

  /// Same for the polarization spectrum in the MB95 G_l convention.
  /// A g_gamma without any l >= 2 entry (in particular an empty vector
  /// from a mode that carried no polarization tower) contributes
  /// nothing and does not count as polarization coverage.
  void add_mode_polarization(double k, double weight_dk,
                             const std::vector<double>& g_gamma);

  /// Temperature-polarization cross spectrum
  /// C_l^TG = 4 pi int dlnk P(k) (F_l/4)(G_l/4) (MB95 conventions; the
  /// era's analogue of the modern TE spectrum).
  void add_mode_cross(double k, double weight_dk,
                      const std::vector<double>& f_gamma,
                      const std::vector<double>& g_gamma);

  /// Temperature spectrum accumulated so far (raw normalization).
  AngularSpectrum temperature() const;

  /// Polarization spectrum accumulated so far (raw normalization).
  AngularSpectrum polarization() const;

  /// Cross spectrum accumulated so far (raw normalization; may be
  /// negative at a given l).
  AngularSpectrum cross() const;

  std::size_t modes_added() const { return n_modes_; }

  /// Highest l any polarization contribution actually reached (the
  /// largest G_l tower seen across add_mode_polarization calls, clamped
  /// to l_max).  0 until the first mode with a usable tower arrives —
  /// the honest "are EE/TE populated, and up to where" signal the run
  /// layer uses to refuse silently-zero columns.
  std::size_t polarization_l_max() const { return pol_l_max_; }

 private:
  std::size_t l_max_;
  PowerLawSpectrum primordial_;
  std::vector<double> ct_, cp_, cx_;
  std::size_t n_modes_ = 0;
  std::size_t pol_l_max_ = 0;
};

/// Rescale a spectrum so that C_2 matches the COBE quadrupole
/// C_2 = (4 pi / 5) (q_rms_ps / t_cmb)^2.  q_rms_ps in Kelvin (e.g.
/// 18e-6), t_cmb in Kelvin.  Returns the applied factor, by which every
/// other COBE-normalized quantity (P(k), sky maps) must also be scaled.
double normalize_to_cobe_quadrupole(AngularSpectrum& spec, double q_rms_ps,
                                    double t_cmb);

}  // namespace plinger::spectra
