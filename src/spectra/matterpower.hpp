#pragma once

/// Linear matter power spectrum — LINGER's second headline output
/// (abstract: "the linear power spectrum of matter fluctuations").
///
/// With the same unit-amplitude initial conditions as the C_l pipeline,
///   P(k) = (2 pi^2 / k^3) P_prim(k) |delta_m(k, tau0)|^2 * norm,
/// where norm is the COBE factor returned by
/// normalize_to_cobe_quadrupole(), making sigma_8 a genuine prediction of
/// the COBE-normalized model (the 1995 workflow).

#include <cstddef>
#include <vector>

#include "math/spline.hpp"
#include "spectra/primordial.hpp"

namespace plinger::spectra {

/// Accumulates (k, delta_m) transfer samples and serves P(k), sigma_R and
/// the transfer function.
class MatterPower {
 public:
  explicit MatterPower(PowerLawSpectrum primordial);

  /// Add one mode's present-day matter overdensity (unit-C IC amplitude).
  /// Modes may arrive in any order.
  void add_mode(double k, double delta_m);

  /// Freeze and build the interpolant; apply the COBE normalization
  /// factor obtained from the temperature spectrum.
  void finalize(double cobe_factor = 1.0);

  /// P(k) in Mpc^3 x (normalization units).  Valid after finalize().
  double operator()(double k) const;

  /// rms mass fluctuation in a top-hat sphere of radius r_mpc:
  /// sigma_R^2 = int dlnk k^3 P(k)/(2 pi^2) W^2(kR).
  double sigma_r(double r_mpc) const;

  /// Conventional transfer function T(k) = sqrt(P(k) k^-n_s) normalized
  /// to T -> 1 as k -> 0 (uses the smallest tabulated k as reference).
  double transfer(double k) const;

  /// Number of modes added.
  std::size_t size() const { return k_.size(); }

  double k_min() const;
  double k_max() const;

 private:
  PowerLawSpectrum primordial_;
  std::vector<double> k_, delta_;
  plinger::math::CubicSpline lnp_of_lnk_;
  double t_ref_ = 0.0;
  bool finalized_ = false;
};

/// The Bardeen-Bond-Kaiser-Szalay (1986) CDM transfer-function fit with
/// shape parameter Gamma = Omega_m h (the standard 1995-era analytic
/// comparison for a LINGER transfer function).
double bbks_transfer(double k_mpc, double gamma_shape, double h);

}  // namespace plinger::spectra
