#pragma once

/// Primordial power spectrum.  The paper's production runs use the
/// scale-invariant n_s = 1 (Harrison-Zel'dovich) spectrum of "standard
/// Cold Dark Matter initial conditions"; the amplitude is fixed a
/// posteriori by the COBE Q_rms-PS normalization, so the raw amplitude
/// here is an arbitrary reference.

#include <cmath>

namespace plinger::spectra {

/// Power-law dimensionless curvature spectrum
/// P(k) = amplitude * (k / k_pivot)^(n_s - 1).
struct PowerLawSpectrum {
  double amplitude = 1.0;
  double n_s = 1.0;
  double k_pivot = 0.05;  ///< Mpc^-1 (reference scale only)

  double operator()(double k) const {
    return amplitude * std::pow(k / k_pivot, n_s - 1.0);
  }
};

}  // namespace plinger::spectra
