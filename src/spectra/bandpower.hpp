#pragma once

/// Band-power utilities for comparing a theory C_l against the
/// experimental points of Figure 2 (the COSAPP compilation role).

#include <cstddef>

#include "spectra/cl.hpp"

namespace plinger::spectra {

/// Flat band-power of a spectrum over a top-hat window [l_lo, l_hi]:
/// the (2l+1)-weighted average of l(l+1) C_l / 2 pi, returned as
/// delta-T in the same units as sqrt(C_l) (multiply by T_cmb for Kelvin):
///   dT^2 = < l(l+1) C_l / 2 pi >_{(2l+1) weights}.
double band_power_delta_t(const AngularSpectrum& spec, std::size_t l_lo,
                          std::size_t l_hi);

/// Gaussian-beam smoothed band power centered at l_eff with dispersion
/// sigma_l — a crude single-parameter window model adequate for the
/// figure-level comparison.
double band_power_gaussian(const AngularSpectrum& spec, double l_eff,
                           double sigma_l);

}  // namespace plinger::spectra
