#include "spectra/cosapp_data.hpp"

namespace plinger::spectra {

namespace {
// Values approximate the 1995 state of the field (see header comment).
// The two COBE rows are the paper's "two leftmost points" (first- and
// second-year analyses at an angular scale of ten degrees).
constexpr BandPowerMeasurement kTable[] = {
    {"COBE-1yr", 6.0, 2.5, 15.0, 30.0, 6.0, 6.0, false},
    {"COBE-2yr", 8.0, 2.5, 20.0, 28.0, 4.0, 4.0, false},
    {"FIRS", 10.0, 3.0, 30.0, 29.0, 8.0, 8.0, false},
    {"Tenerife", 20.0, 13.0, 31.0, 34.0, 13.0, 15.0, false},
    {"SP94", 68.0, 32.0, 110.0, 36.0, 11.0, 14.0, false},
    {"Saskatoon", 69.0, 45.0, 105.0, 42.0, 10.0, 12.0, false},
    {"Python", 91.0, 50.0, 135.0, 49.0, 11.0, 15.0, false},
    {"ARGO", 98.0, 60.0, 140.0, 42.0, 9.0, 11.0, false},
    {"MAX-GUM", 145.0, 85.0, 220.0, 49.0, 10.0, 13.0, false},
    {"MSAM", 160.0, 95.0, 235.0, 46.0, 10.0, 13.0, false},
    {"MAX-ID", 145.0, 85.0, 220.0, 33.0, 9.0, 12.0, false},
    {"WhiteDish", 520.0, 360.0, 720.0, 75.0, 0.0, 0.0, true},
    {"OVRO-22", 600.0, 400.0, 850.0, 59.0, 0.0, 0.0, true},
};
}  // namespace

std::span<const BandPowerMeasurement> cosapp_measurements() {
  return std::span<const BandPowerMeasurement>(kTable);
}

}  // namespace plinger::spectra
