#include "spectra/matterpower.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "math/quadrature.hpp"

namespace plinger::spectra {

MatterPower::MatterPower(PowerLawSpectrum primordial)
    : primordial_(primordial) {}

void MatterPower::add_mode(double k, double delta_m) {
  PLINGER_REQUIRE(!finalized_, "MatterPower: add_mode after finalize");
  PLINGER_REQUIRE(k > 0.0, "MatterPower: k must be positive");
  k_.push_back(k);
  delta_.push_back(delta_m);
}

void MatterPower::finalize(double cobe_factor) {
  PLINGER_REQUIRE(k_.size() >= 4, "MatterPower: too few modes");
  PLINGER_REQUIRE(!finalized_, "MatterPower: already finalized");
  // Sort by k.
  std::vector<std::size_t> idx(k_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [this](std::size_t a, std::size_t b) { return k_[a] < k_[b]; });
  std::vector<double> lnk(k_.size()), lnp(k_.size()), ks(k_.size()),
      ds(k_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    const double k = k_[idx[i]];
    const double d = delta_[idx[i]];
    ks[i] = k;
    ds[i] = d;
    lnk[i] = std::log(k);
    const double p = 2.0 * std::numbers::pi * std::numbers::pi /
                     (k * k * k) * primordial_(k) * d * d * cobe_factor;
    PLINGER_REQUIRE(p > 0.0, "MatterPower: non-positive P(k)");
    lnp[i] = std::log(p);
  }
  k_ = std::move(ks);
  delta_ = std::move(ds);
  lnp_of_lnk_ = plinger::math::CubicSpline(lnk, lnp);
  // Reference for the transfer normalization: delta_m / k^2 -> const as
  // k -> 0 in linear theory.  Derived from the *normalized* P so that
  // transfer() is invariant under the COBE factor and equals 1 at k_min.
  const double k0 = k_.front();
  const double d2_ref = std::exp(lnp.front()) * k0 * k0 * k0 /
                        (2.0 * std::numbers::pi * std::numbers::pi) /
                        primordial_(k0);
  t_ref_ = std::sqrt(d2_ref) / (k0 * k0);
  finalized_ = true;
}

double MatterPower::operator()(double k) const {
  PLINGER_REQUIRE(finalized_, "MatterPower: call finalize() first");
  return std::exp(lnp_of_lnk_(std::log(k)));
}

double MatterPower::transfer(double k) const {
  PLINGER_REQUIRE(finalized_, "MatterPower: call finalize() first");
  // T(k) = (delta_m(k)/k^2) / (delta_m(k0)/k0^2); recover |delta_m| from
  // the spline for interpolated k.
  const double p = (*this)(k);
  const double d2 = p * k * k * k /
                    (2.0 * std::numbers::pi * std::numbers::pi) /
                    primordial_(k);
  return std::sqrt(d2) / (k * k) / t_ref_;
}

double MatterPower::sigma_r(double r_mpc) const {
  PLINGER_REQUIRE(finalized_, "MatterPower: call finalize() first");
  PLINGER_REQUIRE(r_mpc > 0.0, "sigma_r: radius must be positive");
  auto integrand = [this, r_mpc](double lnk) {
    const double k = std::exp(lnk);
    const double x = k * r_mpc;
    // Top-hat window W(x) = 3 (sin x - x cos x)/x^3 (series for small x).
    double w;
    if (x < 1e-3) {
      w = 1.0 - x * x / 10.0;
    } else {
      w = 3.0 * (std::sin(x) - x * std::cos(x)) / (x * x * x);
    }
    const double p = std::exp(lnp_of_lnk_(lnk));
    return k * k * k * p / (2.0 * std::numbers::pi * std::numbers::pi) *
           w * w;
  };
  const double sigma2 = plinger::math::romberg(
      integrand, std::log(k_min()), std::log(k_max()), 1e-7);
  return std::sqrt(sigma2);
}

double MatterPower::k_min() const { return k_.front(); }
double MatterPower::k_max() const { return k_.back(); }

double bbks_transfer(double k_mpc, double gamma_shape, double h) {
  // q in (h Mpc^-1) units divided by Gamma.
  const double q = k_mpc / h / gamma_shape;
  if (q < 1e-9) return 1.0;
  const double poly = 1.0 + 3.89 * q + std::pow(16.1 * q, 2) +
                      std::pow(5.46 * q, 3) + std::pow(6.71 * q, 4);
  return std::log(1.0 + 2.34 * q) / (2.34 * q) * std::pow(poly, -0.25);
}

}  // namespace plinger::spectra
