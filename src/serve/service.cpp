#include "serve/service.hpp"

#include <atomic>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <utility>

#include "common/error.hpp"
#include "run/plan.hpp"
#include "run/products.hpp"
#include "store/mode_result_store.hpp"

namespace plinger::serve {

namespace fs = std::filesystem;

namespace {

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt17(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// RAII compute slot over the service's counting gate.
class SlotGuard {
 public:
  SlotGuard(std::mutex& mu, std::condition_variable& cv, int& free)
      : mu_(mu), cv_(cv), free_(free) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return free_ > 0; });
    --free_;
  }
  ~SlotGuard() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      ++free_;
    }
    cv_.notify_one();
  }

 private:
  std::mutex& mu_;
  std::condition_variable& cv_;
  int& free_;
};

}  // namespace

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::lru:
      return "lru";
    case Tier::journal:
      return "journal";
    case Tier::compute:
      return "compute";
  }
  return "?";
}

void ProgressHub::subscribe(ProgressFn fn) {
  if (!fn) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  sinks_.push_back(std::move(fn));
}

void ProgressHub::notify(std::size_t done, std::size_t total) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const ProgressFn& sink : sinks_) sink(done, total);
}

SpectrumService::SpectrumService(ServeOptions opts)
    : opts_(std::move(opts)),
      lru_(opts_.lru_capacity, opts_.lru_max_bytes),
      slots_free_(opts_.compute_slots) {
  PLINGER_REQUIRE(opts_.compute_slots >= 1,
                  "SpectrumService: compute_slots must be >= 1");
  if (!opts_.journal_dir.empty()) {
    fs::create_directories(opts_.journal_dir);
  }
}

std::string SpectrumService::journal_path(std::uint64_t identity) const {
  if (opts_.journal_dir.empty()) return "";
  return (fs::path(opts_.journal_dir) / (hex16(identity) + ".pj"))
      .string();
}

std::shared_ptr<const run::RunContext> SpectrumService::context_for(
    const run::RunConfig& cfg) {
  const std::uint64_t key = run::RunContext::cosmology_key(cfg);
  std::promise<std::shared_ptr<const run::RunContext>> build;
  bool builder = false;
  ContextFuture fut;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = contexts_.find(key);
    if (it != contexts_.end()) {
      fut = it->second;
    } else {
      fut = build.get_future().share();
      contexts_.emplace(key, fut);
      context_order_.push_back(key);
      builder = true;
      while (context_order_.size() > opts_.context_capacity) {
        // Oldest-built eviction; in-use contexts stay alive through
        // their shared_ptr, only the cache entry goes.
        contexts_.erase(context_order_.front());
        context_order_.erase(context_order_.begin());
      }
    }
  }
  if (builder) {
    try {
      build.set_value(run::make_context(cfg));
    } catch (...) {
      // Do not poison the cache with a failed build.
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        contexts_.erase(key);
        std::erase(context_order_, key);
      }
      build.set_exception(std::current_exception());
    }
  }
  return fut.get();
}

std::shared_ptr<const AnswerBody> SpectrumService::build_answer(
    run::RunPlan& plan, std::uint64_t identity,
    const std::shared_ptr<ProgressHub>& hub) {
  auto body = std::make_shared<AnswerBody>();
  body->identity = identity;

  const std::string jpath = journal_path(identity);
  parallel::RunOutput out;
  bool answered = false;
  if (!jpath.empty() && fs::exists(jpath)) {
    // Tier 2: a complete journal answers by itself; a partial or
    // damaged one falls through to a (resuming) computation.
    try {
      store::JournalContents contents = store::read_journal(jpath);
      if (contents.identity.value == identity &&
          contents.n_k == plan.schedule().size() && contents.complete()) {
        out = run::output_from_results(std::move(contents.results));
        body->built_tier = Tier::journal;
        answered = true;
      }
    } catch (const store::StoreCorrupt&) {
      // Unreadable header: recompute into a fresh journal below.
    }
  }

  if (!answered) {
    SlotGuard slot(slot_mutex_, slot_cv_, slots_free_);
    if (!jpath.empty()) {
      plan.setup().store.path = jpath;
      plan.setup().store.resume = true;
      plan.setup().store.flush_interval = 1;
    }
    // The trace layer is the progress feed: every recorded span
    // (including zero-cost journal-loaded ones) advances the counter.
    const std::size_t total = plan.schedule().size();
    auto done = std::make_shared<std::atomic<std::size_t>>(0);
    plan.setup().trace.enabled = true;
    plan.setup().trace.capture_messages = false;
    plan.setup().trace.on_span = [hub, done,
                                  total](const parallel::ModeSpan& span) {
      if (!span.completed) return;
      hub->notify(++*done, total);
    };
    if (opts_.on_compute) opts_.on_compute();
    out = plan.execute();
    body->built_tier = Tier::compute;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.computes;
    }
  } else {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.journal_hits;
  }

  const run::SpectrumSet spectra = run::make_spectra(plan, out);
  body->modes = out.results.size();
  body->l_max = spectra.temperature.l_max();
  body->degraded = out.completed_degraded || !out.master.failed_ik.empty();

  std::string& p = body->payload;
  if (body->degraded) {
    p += "DEGRADED workers_lost=" + std::to_string(out.n_workers_lost) +
         " reassigned=" + std::to_string(out.n_modes_reassigned) +
         " quarantined=" +
         std::to_string(out.master.quarantined_ik.size()) +
         " failed=" + std::to_string(out.master.failed_ik.size()) + "\n";
  }
  for (std::size_t l = 2; l <= body->l_max; ++l) {
    p += "CL " + std::to_string(l) + " " +
         fmt17(spectra.temperature.cl[l]) + " " +
         fmt17(spectra.polarization.cl[l]) + " " +
         fmt17(spectra.cross.cl[l]) + "\n";
  }
  // Honest polarization coverage: EE/TE entries above this l are
  // structural zeros (the G towers stopped there), not physics.
  p += "POL l_max_pol=" + std::to_string(spectra.polarization_l_max) +
       "\n";
  p += "COBE " + fmt17(spectra.cobe_factor) + "\n";
  p += "DONE\n";
  return body;
}

Answer SpectrumService::answer(const run::RunConfig& cfg_in,
                               const ProgressFn& progress) {
  run::RunConfig cfg = cfg_in;
  // The daemon owns persistence and tracing; requests cannot place
  // journals or trace files (the request parser refuses the keys, this
  // clears them for embedded callers).
  cfg.store.clear();
  cfg.trace = false;
  cfg.validate();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.requests;
  }

  const auto ctx = context_for(cfg);
  run::RunPlan plan(cfg, ctx);
  const std::uint64_t id = plan.identity().value;

  std::promise<std::shared_ptr<const AnswerBody>> mine;
  std::shared_ptr<ProgressHub> hub;
  BodyFuture fut;
  bool builder = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (auto hit = lru_.get(id)) {
      ++stats_.lru_hits;
      return Answer{Tier::lru, hit};
    }
    const auto it = inflight_.find(id);
    if (it != inflight_.end()) {
      ++stats_.coalesced;
      fut = it->second.future;
      hub = it->second.hub;
    } else {
      hub = std::make_shared<ProgressHub>();
      fut = mine.get_future().share();
      inflight_.emplace(id, InFlight{fut, hub});
      builder = true;
    }
  }
  hub->subscribe(progress);

  if (!builder) {
    // Coalesced: wait for the builder; its exception is ours too.
    const auto body = fut.get();
    return Answer{body->built_tier, body};
  }

  std::shared_ptr<const AnswerBody> body;
  try {
    body = build_answer(plan, id, hub);
  } catch (...) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      inflight_.erase(id);
    }
    mine.set_exception(std::current_exception());
    throw;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // A degraded answer is served but never memoized: the journal holds
    // whatever completed, so the next request resumes the residual
    // instead of replaying an incomplete spectrum forever.
    if (!body->degraded) lru_.put(id, body, body->payload.size());
    inflight_.erase(id);
  }
  mine.set_value(body);
  return Answer{body->built_tier, body};
}

ServeStats SpectrumService::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  ServeStats s = stats_;
  s.lru_size = lru_.size();
  s.lru_bytes = lru_.bytes_held();
  s.lru_evicted_bytes = lru_.bytes_evicted();
  s.in_flight = inflight_.size();
  return s;
}

std::string render_response(const Answer& answer) {
  const AnswerBody& b = *answer.body;
  std::string out = "OK identity=" + hex16(b.identity) +
                    " tier=" + tier_name(answer.tier) +
                    " modes=" + std::to_string(b.modes) +
                    " l_max=" + std::to_string(b.l_max) + "\n";
  out += b.payload;
  return out;
}

}  // namespace plinger::serve
