#pragma once

/// SpectrumService — the memoizing three-tier answer path behind the
/// spectrum_serve daemon (and directly embeddable: the TCP front end in
/// serve/server.hpp is a thin shell over this).
///
/// A request is a validated RunConfig; the answer is the rendered
/// spectra product.  The service answers from, in order:
///
///   tier 1  an LRU of finished answers keyed by the pinned 64-bit run
///           identity (store/identity.hpp) — the hash that has been
///           stable across refactors since the checkpoint store landed,
///   tier 2  the persistent journal store: a complete journal written
///           under journal_dir/<identity>.pj answers without recompute
///           (read-through via store::read_journal + the run layer's
///           output_from_results), so a daemon restart keeps its memory,
///   tier 3  compute via RunPlan::execute(), bounded by compute_slots
///           concurrent executions, checkpointing into the journal so
///           the computation itself is crash-safe and resumable.
///
/// Identical concurrent requests coalesce: the first becomes the
/// builder, the rest wait on its shared_future (the run_batch context-
/// cache pattern) and receive the *same* immutable answer body — N
/// concurrent identical requests cost exactly one computation, and the
/// coalescing test pins the responses bitwise identical.  Progress for
/// everyone waiting streams through a per-computation ProgressHub fed
/// by the trace layer's span observer.
///
/// Contexts (Background/Recombination/ThermoCache) are cached by
/// RunContext::cosmology_key with the same build-once coalescing, so a
/// miss on a known cosmology pays only the integration, not the
/// thermodynamics rebuild.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "run/config.hpp"
#include "run/context.hpp"
#include "serve/lru.hpp"

namespace plinger::run {
class RunPlan;
}

namespace plinger::serve {

struct ServeOptions {
  /// Journal directory for tier 2 / persistent memoization; one journal
  /// per identity, named <identity-hex>.pj.  Empty disables persistence
  /// (the service is then LRU-only and forgets on restart).
  std::string journal_dir;

  /// Finished answers kept in memory (tier 1).  0 disables the LRU.
  std::size_t lru_capacity = 64;

  /// Byte budget over the rendered-reply sizes held in the LRU; 0
  /// leaves eviction purely count-based.  With a budget, memory tracks
  /// what cached replies actually weigh (a high-l_max reply is
  /// thousands of CL lines; a draft one a handful), not how many
  /// identities happen to be hot.
  std::size_t lru_max_bytes = 0;

  /// Concurrent RunPlan::execute() calls (each still uses its config's
  /// own driver/worker settings internally).
  int compute_slots = 2;

  /// Cached RunContexts (distinct cosmologies); oldest-built evicted.
  std::size_t context_capacity = 16;

  /// Test/ops hook: called by the building thread immediately before a
  /// tier-3 computation starts (after the request is registered as
  /// in-flight, so a blocked hook holds the computation open for
  /// coalescing tests and drain drills).
  std::function<void()> on_compute;
};

/// Which tier satisfied (or is satisfying) a request.
enum class Tier { lru, journal, compute };
const char* tier_name(Tier t);

/// The immutable, shared result of answering one identity.  `payload`
/// is the rendered response body from the first line after the OK
/// status line through "DONE\n" — coalesced requests hand out the same
/// object, so their responses are bitwise identical.
struct AnswerBody {
  std::uint64_t identity = 0;
  Tier built_tier = Tier::compute;  ///< how this body was produced
  std::size_t modes = 0;
  std::size_t l_max = 0;
  bool degraded = false;  ///< faults lost modes; body not cached
  std::string payload;    ///< [DEGRADED...] CL... COBE... DONE
};

struct Answer {
  Tier tier = Tier::compute;  ///< how THIS request was satisfied
  std::shared_ptr<const AnswerBody> body;
};

/// Streamed progress: completed modes out of the schedule total.
using ProgressFn = std::function<void(std::size_t done, std::size_t total)>;

/// Counters for the STATS command and the bench harness.
struct ServeStats {
  std::uint64_t requests = 0;
  std::uint64_t lru_hits = 0;
  std::uint64_t journal_hits = 0;
  std::uint64_t computes = 0;
  std::uint64_t coalesced = 0;  ///< requests that joined an in-flight build
  std::size_t lru_size = 0;
  std::size_t lru_bytes = 0;          ///< rendered-reply bytes resident
  std::size_t lru_evicted_bytes = 0;  ///< cumulative bytes evicted
  std::size_t in_flight = 0;
};

/// Fans one computation's progress out to every coalesced subscriber.
class ProgressHub {
 public:
  void subscribe(ProgressFn fn);
  void notify(std::size_t done, std::size_t total);

 private:
  std::mutex mutex_;
  std::vector<ProgressFn> sinks_;
};

class SpectrumService {
 public:
  explicit SpectrumService(ServeOptions opts);

  SpectrumService(const SpectrumService&) = delete;
  SpectrumService& operator=(const SpectrumService&) = delete;

  /// Answer one request.  `progress` (optional) receives streamed
  /// completion counts while a tier-3 computation runs — including when
  /// this request coalesced onto another's computation.  Throws
  /// InvalidArgument on an invalid config; a builder's exception is
  /// rethrown to every coalesced waiter.
  Answer answer(const run::RunConfig& cfg, const ProgressFn& progress = {});

  ServeStats stats() const;

  /// Where this identity's journal lives ("" without a journal_dir).
  std::string journal_path(std::uint64_t identity) const;

  const ServeOptions& options() const { return opts_; }

 private:
  using BodyFuture =
      std::shared_future<std::shared_ptr<const AnswerBody>>;
  struct InFlight {
    BodyFuture future;
    std::shared_ptr<ProgressHub> hub;
  };
  using ContextFuture =
      std::shared_future<std::shared_ptr<const run::RunContext>>;

  std::shared_ptr<const run::RunContext> context_for(
      const run::RunConfig& cfg);
  std::shared_ptr<const AnswerBody> build_answer(
      run::RunPlan& plan, std::uint64_t identity,
      const std::shared_ptr<ProgressHub>& hub);

  ServeOptions opts_;

  mutable std::mutex mutex_;
  LruCache<AnswerBody> lru_;
  std::map<std::uint64_t, InFlight> inflight_;
  std::map<std::uint64_t, ContextFuture> contexts_;
  std::vector<std::uint64_t> context_order_;  ///< insertion order
  ServeStats stats_;

  std::mutex slot_mutex_;
  std::condition_variable slot_cv_;
  int slots_free_ = 0;
};

/// The full response text for an answer: the OK status line (which
/// names the satisfying tier) followed by the shared payload.
std::string render_response(const Answer& answer);

}  // namespace plinger::serve
