#pragma once

/// A small identity-keyed LRU cache — tier 1 of the serve answer path.
///
/// Keys are the 64-bit run-identity hashes the checkpoint store pins
/// (store/identity.hpp), values are shared immutable answers, so a hit
/// is one hash lookup plus a list splice and an eviction can never
/// invalidate an answer a request is still holding.  The cache itself
/// is unsynchronized: SpectrumService guards it with the same mutex
/// that serializes the in-flight coalescing table, keeping the
/// lookup-then-insert races inside one critical section.
///
/// Eviction is governed by two independent budgets: an entry count
/// (always on) and an optional byte budget over caller-supplied entry
/// costs (the daemon passes rendered-reply sizes, so memory tracks what
/// replies actually weigh rather than how many there are).  Either
/// budget overflowing evicts from the least-recently-used end.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/error.hpp"

namespace plinger::serve {

template <typename V>
class LruCache {
 public:
  /// A capacity of 0 disables caching entirely (every get misses,
  /// every put is dropped) — the daemon's "no memory tier" switch.
  /// max_bytes bounds the sum of entry costs; 0 means the byte budget
  /// is off and only the entry count governs eviction.
  explicit LruCache(std::size_t capacity, std::size_t max_bytes = 0)
      : capacity_(capacity), max_bytes_(max_bytes) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t max_bytes() const { return max_bytes_; }
  std::size_t size() const { return map_.size(); }
  /// Sum of the costs of resident entries.
  std::size_t bytes_held() const { return bytes_held_; }
  /// Cumulative cost of everything evicted over the budget (overwrites
  /// of a live key do not count — the key stayed resident).
  std::size_t bytes_evicted() const { return bytes_evicted_; }

  /// The cached value, promoted to most-recently-used; null on a miss.
  std::shared_ptr<const V> get(std::uint64_t key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->value;
  }

  /// Insert (or overwrite) key as most-recently-used, evicting from the
  /// least-recently-used end to stay within both budgets.  `bytes` is
  /// this entry's cost against max_bytes (ignored when the byte budget
  /// is off, harmless to pass anyway).
  void put(std::uint64_t key, std::shared_ptr<const V> value,
           std::size_t bytes = 0) {
    PLINGER_REQUIRE(value != nullptr, "LruCache: null value");
    if (capacity_ == 0) return;
    const auto it = map_.find(key);
    if (it != map_.end()) {
      bytes_held_ -= it->second->bytes;
      it->second->value = std::move(value);
      it->second->bytes = bytes;
      bytes_held_ += bytes;
      order_.splice(order_.begin(), order_, it->second);
      evict_over_budget();
      return;
    }
    order_.push_front(Entry{key, std::move(value), bytes});
    map_.emplace(key, order_.begin());
    bytes_held_ += bytes;
    evict_over_budget();
  }

  /// Present without promoting (tests and stats).
  bool contains(std::uint64_t key) const { return map_.count(key) != 0; }

 private:
  struct Entry {
    std::uint64_t key;
    std::shared_ptr<const V> value;
    std::size_t bytes;
  };

  void evict_over_budget() {
    while (map_.size() > capacity_ ||
           (max_bytes_ > 0 && bytes_held_ > max_bytes_ && map_.size() > 1)) {
      // The size() > 1 guard keeps one oversized entry resident rather
      // than thrashing an empty cache: a reply bigger than the whole
      // budget would otherwise never be servable from tier 1.
      const Entry& back = order_.back();
      bytes_held_ -= back.bytes;
      bytes_evicted_ += back.bytes;
      map_.erase(back.key);
      order_.pop_back();
    }
  }

  std::size_t capacity_;
  std::size_t max_bytes_;
  std::size_t bytes_held_ = 0;
  std::size_t bytes_evicted_ = 0;
  std::list<Entry> order_;  ///< front = most recent
  std::unordered_map<std::uint64_t, typename std::list<Entry>::iterator>
      map_;
};

}  // namespace plinger::serve
