#pragma once

/// A small identity-keyed LRU cache — tier 1 of the serve answer path.
///
/// Keys are the 64-bit run-identity hashes the checkpoint store pins
/// (store/identity.hpp), values are shared immutable answers, so a hit
/// is one hash lookup plus a list splice and an eviction can never
/// invalidate an answer a request is still holding.  The cache itself
/// is unsynchronized: SpectrumService guards it with the same mutex
/// that serializes the in-flight coalescing table, keeping the
/// lookup-then-insert races inside one critical section.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/error.hpp"

namespace plinger::serve {

template <typename V>
class LruCache {
 public:
  /// A capacity of 0 disables caching entirely (every get misses,
  /// every put is dropped) — the daemon's "no memory tier" switch.
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return map_.size(); }

  /// The cached value, promoted to most-recently-used; null on a miss.
  std::shared_ptr<const V> get(std::uint64_t key) {
    const auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Insert (or overwrite) key as most-recently-used, evicting from the
  /// least-recently-used end to stay within capacity.
  void put(std::uint64_t key, std::shared_ptr<const V> value) {
    PLINGER_REQUIRE(value != nullptr, "LruCache: null value");
    if (capacity_ == 0) return;
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(key, std::move(value));
    map_.emplace(key, order_.begin());
    while (map_.size() > capacity_) {
      map_.erase(order_.back().first);
      order_.pop_back();
    }
  }

  /// Present without promoting (tests and stats).
  bool contains(std::uint64_t key) const { return map_.count(key) != 0; }

 private:
  using Entry = std::pair<std::uint64_t, std::shared_ptr<const V>>;
  std::size_t capacity_;
  std::list<Entry> order_;  ///< front = most recent
  std::unordered_map<std::uint64_t, typename std::list<Entry>::iterator>
      map_;
};

}  // namespace plinger::serve
