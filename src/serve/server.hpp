#pragma once

/// SpectrumServer — the line-oriented TCP shell around SpectrumService.
///
/// One thread runs the accept loop (serve(), blocking); each accepted
/// connection gets its own thread speaking the protocol in
/// docs/protocol.md: a command line (RUN / PING / STATS / QUIT), for
/// RUN a key=value body terminated by "END", and a streamed reply
/// (PROGRESS lines while a computation runs, then OK + payload, or one
/// ERR line).
///
/// Shutdown is graceful by construction: request_stop() is
/// async-signal-safe (an atomic flag plus one write to a wake pipe), so
/// the daemon's SIGINT/SIGTERM handlers may call it directly.  The
/// accept loop wakes, stops accepting, and serve() joins every
/// connection thread — connections finish the request they are in the
/// middle of (journal flushes happen inside the run, per mode) and
/// close instead of reading the next one.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.hpp"

namespace plinger::serve {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port (tests); port() has the
  /// real one once the constructor returns.
  std::uint16_t port = 0;
};

class SpectrumServer {
 public:
  /// Binds and listens (throws Error on any socket failure); serving
  /// starts with serve().  The service must outlive the server.
  SpectrumServer(SpectrumService& service, ServerOptions opts);
  ~SpectrumServer();

  SpectrumServer(const SpectrumServer&) = delete;
  SpectrumServer& operator=(const SpectrumServer&) = delete;

  /// The bound port (resolves port = 0 to the kernel's choice).
  std::uint16_t port() const { return port_; }

  /// Accept and serve connections until request_stop(); returns after
  /// every connection thread has drained and joined.
  void serve();

  /// Begin a graceful shutdown.  Async-signal-safe: an atomic store and
  /// one pipe write — callable from a signal handler.
  void request_stop() noexcept;

  bool stopping() const { return stopping_.load(); }

 private:
  void handle_connection(int fd);

  SpectrumService& service_;
  ServerOptions opts_;
  int listen_fd_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::mutex threads_mutex_;
  std::vector<std::jthread> threads_;
};

}  // namespace plinger::serve
