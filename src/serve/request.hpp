#pragma once

/// The serve request surface: one line-oriented command, optionally
/// followed by a RunConfig key=value body (see docs/protocol.md, "The
/// serve wire protocol").
///
/// Parsing is deliberately strict where linger_cli is lenient: the CLI
/// warns about an unknown key and runs anyway, but a daemon answering
/// with CPU-minutes of compute must refuse anything it does not fully
/// understand — every diagnostic (unknown key, unknown command, bad
/// value) comes back as an ERR reply carrying the same did-you-mean
/// suggestions (common/suggest.hpp) the CLI prints.

#include <string>
#include <vector>

#include "run/config.hpp"

namespace plinger::serve {

enum class Command {
  run,    ///< "RUN" + key=value body + "END": answer with spectra
  ping,   ///< "PING": liveness probe
  stats,  ///< "STATS": cache/coalescing counters
  quit,   ///< "QUIT": close this connection
};

struct Request {
  Command command = Command::ping;
  run::RunConfig config;  ///< RUN only: parsed, validated, ready to plan
};

/// Outcome of parsing one request block; `error` empty means `request`
/// is valid.  A non-empty error is the text of the ERR reply (without
/// the "ERR " prefix).
struct RequestParse {
  Request request;
  std::string error;
};

/// Keys a request may not set: journal placement, resume policy, and
/// trace wiring belong to the daemon, which keys journals by run
/// identity and feeds PROGRESS lines from its own trace hook.
bool is_reserved_key(const std::string& key);

/// Parse one command line ("RUN", "PING", ...; surrounding whitespace
/// and a trailing CR are ignored) plus, for RUN, its body lines (the
/// lines between the command and "END", exclusive).
RequestParse parse_request(const std::string& command_line,
                           const std::vector<std::string>& body);

}  // namespace plinger::serve
