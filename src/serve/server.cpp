#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "serve/request.hpp"

namespace plinger::serve {

namespace {

void close_if_open(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

/// Write the whole buffer; false once the peer is gone.  MSG_NOSIGNAL
/// keeps a dead client from killing the daemon with SIGPIPE.
bool send_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n = ::send(fd, text.data() + off, text.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Line-buffered reads over a polled socket.  next_line() returns false
/// on EOF/error; while waiting it checks the caller's stop predicate
/// every poll tick so an idle connection notices a shutdown.
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// idle: true while the connection sits between requests — only then
  /// may a shutdown abandon the read.
  template <typename StopFn>
  bool next_line(std::string& line, bool idle, const StopFn& stop) {
    while (true) {
      const auto nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return true;
      }
      if (idle && stop()) return false;
      struct pollfd pfd{fd_, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, 200);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (pr == 0) continue;
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n == 0) return false;
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buf_;
};

}  // namespace

SpectrumServer::SpectrumServer(SpectrumService& service, ServerOptions opts)
    : service_(service), opts_(std::move(opts)) {
  int pipefd[2];
  if (::pipe2(pipefd, O_CLOEXEC | O_NONBLOCK) != 0) {
    throw Error(std::string("serve: pipe2 failed: ") +
                std::strerror(errno));
  }
  wake_read_ = pipefd[0];
  wake_write_ = pipefd[1];

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    close_if_open(wake_read_);
    close_if_open(wake_write_);
    throw Error(std::string("serve: socket failed: ") +
                std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    close_if_open(listen_fd_);
    close_if_open(wake_read_);
    close_if_open(wake_write_);
    throw Error("serve: bad bind address '" + opts_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string why = std::strerror(errno);
    close_if_open(listen_fd_);
    close_if_open(wake_read_);
    close_if_open(wake_write_);
    throw Error("serve: cannot listen on " + opts_.bind_address + ":" +
                std::to_string(opts_.port) + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);
}

SpectrumServer::~SpectrumServer() {
  request_stop();
  close_if_open(listen_fd_);
  close_if_open(wake_read_);
  close_if_open(wake_write_);
}

void SpectrumServer::request_stop() noexcept {
  stopping_.store(true);
  if (wake_write_ >= 0) {
    const char x = 'x';
    // Best-effort, async-signal-safe wake; a full pipe already wakes.
    [[maybe_unused]] const ssize_t n = ::write(wake_write_, &x, 1);
  }
}

void SpectrumServer::serve() {
  while (!stopping_.load()) {
    struct pollfd fds[2] = {{listen_fd_, POLLIN, 0},
                            {wake_read_, POLLIN, 0}};
    const int pr = ::poll(fds, 2, -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // woken for shutdown
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int cfd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (cfd < 0) continue;
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    threads_.emplace_back(
        [this, cfd] { handle_connection(cfd); });
  }
  // Drain: connections notice stopping_ between requests, finish the
  // request in flight, and exit; joining them completes the shutdown.
  std::vector<std::jthread> drained;
  {
    const std::lock_guard<std::mutex> lock(threads_mutex_);
    drained.swap(threads_);
  }
  drained.clear();  // joins
}

void SpectrumServer::handle_connection(int fd) {
  LineReader reader(fd);
  const auto stop = [this] { return stopping_.load(); };
  std::string line;
  while (reader.next_line(line, /*idle=*/true, stop)) {
    std::vector<std::string> body;
    bool truncated = false;
    if (line == "RUN" || line == "RUN\r") {
      // Mid-request: keep reading even during shutdown so a request
      // already on the wire gets its answer (drain semantics).
      std::string body_line;
      while (true) {
        if (!reader.next_line(body_line, /*idle=*/false, stop)) {
          truncated = true;
          break;
        }
        if (body_line == "END") break;
        body.push_back(body_line);
      }
      if (truncated) break;
    }
    const RequestParse parsed = parse_request(line, body);
    if (!parsed.error.empty()) {
      if (!send_all(fd, "ERR " + parsed.error + "\n")) break;
      continue;
    }
    bool keep = true;
    switch (parsed.request.command) {
      case Command::ping:
        keep = send_all(fd, "PONG\n");
        break;
      case Command::quit:
        send_all(fd, "BYE\n");
        keep = false;
        break;
      case Command::stats: {
        const ServeStats s = service_.stats();
        std::string out;
        out += "STAT requests " + std::to_string(s.requests) + "\n";
        out += "STAT lru_hits " + std::to_string(s.lru_hits) + "\n";
        out += "STAT journal_hits " + std::to_string(s.journal_hits) + "\n";
        out += "STAT computes " + std::to_string(s.computes) + "\n";
        out += "STAT coalesced " + std::to_string(s.coalesced) + "\n";
        out += "STAT lru_size " + std::to_string(s.lru_size) + "\n";
        out += "STAT lru_bytes " + std::to_string(s.lru_bytes) + "\n";
        out += "STAT lru_evicted_bytes " +
               std::to_string(s.lru_evicted_bytes) + "\n";
        out += "STAT in_flight " + std::to_string(s.in_flight) + "\n";
        out += "DONE\n";
        keep = send_all(fd, out);
        break;
      }
      case Command::run: {
        // PROGRESS lines stream from worker threads (serialized by the
        // ProgressHub); this thread is blocked inside answer() until
        // the last of them has been delivered, so the OK line and
        // payload never interleave with them.
        const ProgressFn progress = [fd](std::size_t done,
                                         std::size_t total) {
          send_all(fd, "PROGRESS " + std::to_string(done) + "/" +
                           std::to_string(total) + "\n");
        };
        try {
          const Answer answer =
              service_.answer(parsed.request.config, progress);
          keep = send_all(fd, render_response(answer));
        } catch (const Error& e) {
          keep = send_all(fd, std::string("ERR ") + e.what() + "\n");
        }
        break;
      }
    }
    if (!keep) break;
  }
  ::close(fd);
}

}  // namespace plinger::serve
