#include "serve/request.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/suggest.hpp"
#include "io/params.hpp"

namespace plinger::serve {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

const std::vector<std::string>& command_names() {
  static const std::vector<std::string> names = {"RUN", "PING", "STATS",
                                                 "QUIT"};
  return names;
}

}  // namespace

bool is_reserved_key(const std::string& key) {
  // Persistence and trace wiring are the daemon's: it keys journals by
  // run identity and owns the progress feed.
  // Transport wiring too: the daemon always runs in-process, and a
  // request must not make it listen on or dial arbitrary sockets.
  return key == "store" || key == "resume" || key == "flush_interval" ||
         key == "stop_after" || key == "trace" || key == "trace_json" ||
         key == "transport" || key == "tcp_listen" ||
         key == "tcp_connect" || key == "tcp_retry" ||
         key == "tcp_backoff_ms";
}

RequestParse parse_request(const std::string& command_line,
                           const std::vector<std::string>& body) {
  RequestParse out;
  const std::string cmd = trim(command_line);
  if (cmd == "PING") {
    out.request.command = Command::ping;
    return out;
  }
  if (cmd == "STATS") {
    out.request.command = Command::stats;
    return out;
  }
  if (cmd == "QUIT") {
    out.request.command = Command::quit;
    return out;
  }
  if (cmd != "RUN") {
    std::string msg = "unknown command '" + cmd + "'";
    const std::string hint =
        common::closest_within_two(cmd, command_names());
    if (!hint.empty()) msg += " (did you mean '" + hint + "'?)";
    out.error = msg;
    return out;
  }

  out.request.command = Command::run;
  std::ostringstream joined;
  for (std::size_t i = 0; i < body.size(); ++i) {
    // parse_params skips lines without '='; a daemon must not turn a
    // garbled body into a default-valued computation, so refuse them.
    std::string checked = body[i];
    const auto hash = checked.find('#');
    if (hash != std::string::npos) checked.erase(hash);
    if (!trim(checked).empty() &&
        checked.find('=') == std::string::npos) {
      out.error = "malformed request body: line " + std::to_string(i + 1) +
                  " is not a key = value pair: '" + trim(checked) + "'";
      return out;
    }
    joined << body[i] << "\n";
  }
  io::KeyValueMap kv;
  try {
    std::istringstream is(joined.str());
    kv = io::parse_params(is);
  } catch (const Error& e) {
    out.error = std::string("malformed request body: ") + e.what();
    return out;
  }
  for (const auto& [key, value] : kv) {
    (void)value;
    if (is_reserved_key(key)) {
      out.error = "key '" + key +
                  "' is reserved by the daemon (journal placement, "
                  "resume policy, and tracing are managed per identity)";
      return out;
    }
  }
  run::ConfigParse parsed;
  try {
    parsed = run::parse_config(kv);
  } catch (const Error& e) {
    out.error = e.what();
    return out;
  }
  if (!parsed.unknown_keys.empty()) {
    // Strict where the CLI warns: refuse the whole request, naming the
    // first offender (sorted order) with the CLI's suggestion.
    const std::string& key = parsed.unknown_keys.front();
    std::string msg = "unrecognized key '" + key + "'";
    const std::string hint = run::config_key_suggestion(key);
    if (!hint.empty()) msg += " (did you mean '" + hint + "'?)";
    out.error = msg;
    return out;
  }
  out.request.config = parsed.config;
  return out;
}

}  // namespace plinger::serve
