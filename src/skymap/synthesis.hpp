#pragma once

/// Spherical-harmonic synthesis of a sky map on an equirectangular
/// (latitude x longitude) grid — the second half of Figure 3.  The
/// paper's map has half-degree resolution versus ten degrees for COBE,
/// with temperature extremes of +-200 micro-K about T = 2.726 K.

#include <cstddef>
#include <vector>

#include "skymap/alm.hpp"

namespace plinger::skymap {

/// A pixelized map: row-major n_lat x n_lon, theta from ~0 (north pole)
/// to ~pi, phi from 0 to 2 pi; pixel centers offset half a cell.
struct SkyMap {
  std::size_t n_lat = 0, n_lon = 0;
  std::vector<double> data;

  double& at(std::size_t i_lat, std::size_t i_lon) {
    return data[i_lat * n_lon + i_lon];
  }
  double at(std::size_t i_lat, std::size_t i_lon) const {
    return data[i_lat * n_lon + i_lon];
  }

  double min() const;
  double max() const;
  double mean() const;
  /// Area-weighted rms about the mean (weights ~ sin theta).
  double rms() const;
  /// Area-weighted rms temperature variance, for comparison against
  /// sum (2l+1) C_l / 4 pi.
  double variance() const;
};

/// Synthesize T(theta, phi) = sum_lm a_lm Y_lm via associated-Legendre
/// recurrences per latitude ring and a real m-sum per pixel.
/// Cost O(n_lat (l_max^2 + n_lon l_max)).
SkyMap synthesize(const AlmSet& alm, std::size_t n_lat, std::size_t n_lon);

}  // namespace plinger::skymap
