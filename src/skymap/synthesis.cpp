#include "skymap/synthesis.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "math/legendre.hpp"

namespace plinger::skymap {

double SkyMap::min() const {
  return *std::min_element(data.begin(), data.end());
}
double SkyMap::max() const {
  return *std::max_element(data.begin(), data.end());
}

double SkyMap::mean() const {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n_lat; ++i) {
    const double theta =
        std::numbers::pi * (static_cast<double>(i) + 0.5) /
        static_cast<double>(n_lat);
    const double w = std::sin(theta);
    for (std::size_t j = 0; j < n_lon; ++j) {
      num += w * at(i, j);
      den += w;
    }
  }
  return num / den;
}

double SkyMap::variance() const {
  const double mu = mean();
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < n_lat; ++i) {
    const double theta =
        std::numbers::pi * (static_cast<double>(i) + 0.5) /
        static_cast<double>(n_lat);
    const double w = std::sin(theta);
    for (std::size_t j = 0; j < n_lon; ++j) {
      const double d = at(i, j) - mu;
      num += w * d * d;
      den += w;
    }
  }
  return num / den;
}

double SkyMap::rms() const { return std::sqrt(variance()); }

SkyMap synthesize(const AlmSet& alm, std::size_t n_lat, std::size_t n_lon) {
  PLINGER_REQUIRE(n_lat >= 2 && n_lon >= 4, "synthesize: grid too small");
  const std::size_t l_max = alm.l_max();
  SkyMap map;
  map.n_lat = n_lat;
  map.n_lon = n_lon;
  map.data.assign(n_lat * n_lon, 0.0);

  plinger::math::AssociatedLegendre legendre(l_max);
  std::vector<double> lam(l_max + 1);
  // f_m(theta) = sum_l a_lm lambda_lm(cos theta).
  std::vector<std::complex<double>> f_m(l_max + 1);

  for (std::size_t i = 0; i < n_lat; ++i) {
    const double theta =
        std::numbers::pi * (static_cast<double>(i) + 0.5) /
        static_cast<double>(n_lat);
    const double x = std::cos(theta);
    for (std::size_t m = 0; m <= l_max; ++m) {
      legendre.lambda_lm(m, x, lam);
      std::complex<double> acc(0.0, 0.0);
      for (std::size_t l = std::max<std::size_t>(m, 2); l <= l_max; ++l) {
        acc += alm.at(l, m) * lam[l - m];
      }
      f_m[m] = acc;
    }
    // T(theta, phi) = f_0 + 2 sum_{m>0} Re[f_m e^{i m phi}], evaluated
    // with an incremental phase rotation per pixel.
    for (std::size_t j = 0; j < n_lon; ++j) {
      const double phi = 2.0 * std::numbers::pi *
                         (static_cast<double>(j) + 0.5) /
                         static_cast<double>(n_lon);
      const std::complex<double> dphase(std::cos(phi), std::sin(phi));
      std::complex<double> phase(1.0, 0.0);
      double t = f_m[0].real();
      for (std::size_t m = 1; m <= l_max; ++m) {
        phase *= dphase;
        t += 2.0 * (f_m[m] * phase).real();
      }
      map.at(i, j) = t;
    }
  }
  return map;
}

}  // namespace plinger::skymap
