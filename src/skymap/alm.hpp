#pragma once

/// Gaussian realizations of spherical-harmonic coefficients from a C_l —
/// the first half of Figure 3's "simulated sky map, analogous to the
/// COBE sky map, made using the output of PLINGER".

#include <complex>
#include <cstddef>
#include <vector>

#include "spectra/cl.hpp"

namespace plinger::skymap {

/// a_lm coefficients for m >= 0 (the m < 0 half follows from reality:
/// a_{l,-m} = (-1)^m conj(a_lm)).
class AlmSet {
 public:
  explicit AlmSet(std::size_t l_max);

  std::size_t l_max() const { return l_max_; }

  std::complex<double>& at(std::size_t l, std::size_t m);
  const std::complex<double>& at(std::size_t l, std::size_t m) const;

  /// Realized angular power \hat C_l = (|a_l0|^2 + 2 sum_m |a_lm|^2)/(2l+1).
  double realized_cl(std::size_t l) const;

  /// Multiply every a_lm by a Gaussian beam b_l = exp(-l(l+1) sigma^2/2);
  /// sigma in radians (fwhm = sigma sqrt(8 ln 2)).
  void apply_gaussian_beam(double sigma_radians);

 private:
  std::size_t l_max_;
  std::vector<std::complex<double>> a_;  ///< index l(l+1)/2 + m
};

/// Draw a Gaussian realization with <|a_lm|^2> = C_l.  Deterministic for
/// a given seed.
AlmSet realize_alm(const spectra::AngularSpectrum& spectrum,
                   std::uint64_t seed);

}  // namespace plinger::skymap
