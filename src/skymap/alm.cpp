#include "skymap/alm.hpp"

#include <cmath>

#include "common/error.hpp"
#include "math/rng.hpp"

namespace plinger::skymap {

AlmSet::AlmSet(std::size_t l_max) : l_max_(l_max) {
  a_.assign((l_max + 1) * (l_max + 2) / 2, {0.0, 0.0});
}

std::complex<double>& AlmSet::at(std::size_t l, std::size_t m) {
  PLINGER_REQUIRE(l <= l_max_ && m <= l, "AlmSet: index out of range");
  return a_[l * (l + 1) / 2 + m];
}

const std::complex<double>& AlmSet::at(std::size_t l, std::size_t m) const {
  PLINGER_REQUIRE(l <= l_max_ && m <= l, "AlmSet: index out of range");
  return a_[l * (l + 1) / 2 + m];
}

double AlmSet::realized_cl(std::size_t l) const {
  double sum = std::norm(at(l, 0));
  for (std::size_t m = 1; m <= l; ++m) sum += 2.0 * std::norm(at(l, m));
  return sum / (2.0 * static_cast<double>(l) + 1.0);
}

void AlmSet::apply_gaussian_beam(double sigma_radians) {
  PLINGER_REQUIRE(sigma_radians >= 0.0, "beam sigma must be >= 0");
  for (std::size_t l = 0; l <= l_max_; ++l) {
    const double ll = static_cast<double>(l);
    const double b =
        std::exp(-0.5 * ll * (ll + 1.0) * sigma_radians * sigma_radians);
    for (std::size_t m = 0; m <= l; ++m) at(l, m) *= b;
  }
}

AlmSet realize_alm(const spectra::AngularSpectrum& spectrum,
                   std::uint64_t seed) {
  const std::size_t l_max = spectrum.l_max();
  PLINGER_REQUIRE(l_max >= 2, "realize_alm: spectrum too short");
  AlmSet alm(l_max);
  plinger::math::Xoshiro256 rng(seed);
  for (std::size_t l = 2; l <= l_max; ++l) {
    const double cl = spectrum.cl[l];
    PLINGER_REQUIRE(cl >= 0.0, "realize_alm: negative C_l");
    const double s = std::sqrt(cl);
    alm.at(l, 0) = {s * rng.gaussian(), 0.0};
    const double s2 = s / std::sqrt(2.0);
    for (std::size_t m = 1; m <= l; ++m) {
      alm.at(l, m) = {s2 * rng.gaussian(), s2 * rng.gaussian()};
    }
  }
  return alm;
}

}  // namespace plinger::skymap
