#pragma once

#include <stdexcept>
#include <string>

namespace plinger {

/// Base exception for all plinger++ errors.  Carries a human-readable message
/// describing what went wrong and, where possible, the offending value.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when user-supplied parameters fail validation (negative densities,
/// empty grids, out-of-range tolerances, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Thrown when a numerical routine fails to converge (integrator step-size
/// underflow, root bracketing failure, quadrature non-convergence, ...).
class NumericalFailure : public Error {
 public:
  explicit NumericalFailure(const std::string& what) : Error(what) {}
};

namespace detail {
/// Implementation of PLINGER_REQUIRE: formats and throws InvalidArgument.
[[noreturn]] void throw_requirement_failure(const char* expr, const char* file,
                                            int line, const std::string& msg);
}  // namespace detail

}  // namespace plinger

/// Precondition check that throws plinger::InvalidArgument when violated.
/// Unlike assert() it is active in release builds: these guard public API
/// boundaries, not internal invariants.
#define PLINGER_REQUIRE(expr, msg)                                          \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::plinger::detail::throw_requirement_failure(#expr, __FILE__,         \
                                                   __LINE__, (msg));        \
    }                                                                       \
  } while (false)
