#include "common/suggest.hpp"

#include <algorithm>
#include <utility>

namespace plinger::common {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> prev(b.size() + 1), cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t subst = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}

std::string closest_within_two(const std::string& value,
                               const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_d = 3;
  for (const std::string& c : candidates) {
    const std::size_t d = edit_distance(value, c);
    if (d < best_d && d < c.size()) {
      best_d = d;
      best = c;
    }
  }
  return best;
}

}  // namespace plinger::common
