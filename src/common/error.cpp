#include "common/error.hpp"

#include <sstream>

namespace plinger::detail {

void throw_requirement_failure(const char* expr, const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << "requirement violated: " << msg << " [" << expr << " at " << file
     << ":" << line << "]";
  throw InvalidArgument(os.str());
}

}  // namespace plinger::detail
