#pragma once

/// Physical constants (SI unless noted) and the unit conventions used
/// throughout plinger++.
///
/// Conventions (following LINGER / CMBFAST practice):
///  * conformal time tau and comoving lengths are measured in Mpc
///    (with c = 1, i.e. "Mpc of light travel"),
///  * wavenumbers k in Mpc^-1,
///  * the scale factor is normalized to a = 1 today,
///  * background densities enter the equations as
///      grho_i(a) = 8 pi G a^2 rho_i / c^2   [Mpc^-2],
///    so the Friedmann equation reads (a'/a)^2 = sum_i grho_i(a) / 3.

namespace plinger::constants {

// --- fundamental (CODATA-era values; exactness is irrelevant at our
// --- reproduction accuracy but we keep full published precision) ---
inline constexpr double c_light = 2.99792458e8;       ///< m/s
inline constexpr double G_newton = 6.67430e-11;       ///< m^3 kg^-1 s^-2
inline constexpr double k_boltzmann = 1.380649e-23;   ///< J/K
inline constexpr double h_planck = 6.62607015e-34;    ///< J s
inline constexpr double hbar = 1.054571817e-34;       ///< J s
inline constexpr double eV = 1.602176634e-19;         ///< J
inline constexpr double m_electron = 9.1093837015e-31;  ///< kg
inline constexpr double m_hydrogen = 1.6735575e-27;     ///< kg (H atom)
inline constexpr double sigma_thomson = 6.6524587321e-29;  ///< m^2
/// Radiation constant a_R = 4 sigma_SB / c.
inline constexpr double a_radiation = 7.565723e-16;  ///< J m^-3 K^-4

// --- astronomical ---
inline constexpr double mpc_in_m = 3.085677581491367e22;  ///< m per Mpc
/// Hubble distance for h = 1: c / (100 km/s/Mpc) in Mpc.
inline constexpr double hubble_distance_mpc = 2997.92458;

// --- atomic physics for recombination ---
inline constexpr double E_ion_H = 13.598433 * eV;    ///< H ionization (J)
inline constexpr double E_ion_H_n2 = E_ion_H / 4.0;  ///< from n=2 (J)
/// Lyman-alpha transition energy E(1s->2p) = (3/4) * 13.6 eV.
inline constexpr double E_lyman_alpha = 0.75 * E_ion_H;
inline constexpr double lambda_lyman_alpha = 1.215668e-7;  ///< m
/// Two-photon 2s -> 1s decay rate.
inline constexpr double lambda_2s1s = 8.227;  ///< s^-1
inline constexpr double E_ion_HeI = 24.587387 * eV;   ///< J
inline constexpr double E_ion_HeII = 54.417760 * eV;  ///< J

/// Critical density today for h = 1, in kg/m^3:
/// rho_crit = 3 (100 km/s/Mpc)^2 / (8 pi G).
inline constexpr double rho_crit_h2 = 1.8784e-26;

/// Neutrino-to-photon temperature ratio (4/11)^(1/3) after e+e-
/// annihilation (instantaneous-decoupling value used by LINGER).
inline constexpr double t_nu_over_t_gamma = 0.7137658555036082;

}  // namespace plinger::constants
