#pragma once

/// Did-you-mean suggestions for small fixed vocabularies.
///
/// Every user-facing key=value surface in the tree wants the same
/// diagnostic: an unknown key or enum value is reported together with
/// the closest known candidate, so `sover = los` becomes actionable
/// instead of a silent default.  The helper started life inside the
/// run-layer config parser; the serve request parser and linger_cli
/// share this one implementation now.
///
/// The vocabularies are tiny (a handful of enum values, ~40 table
/// keys), so the O(len^2) two-row Levenshtein form is plenty.

#include <cstddef>
#include <string>
#include <vector>

namespace plinger::common {

/// Levenshtein edit distance between two strings.
std::size_t edit_distance(const std::string& a, const std::string& b);

/// The candidate closest to `value` within an edit distance of 2 (and
/// closer than the whole candidate is long, so short words cannot be
/// "suggested" from unrelated input), or "" when nothing is worth
/// suggesting.  Earlier candidates win ties.
std::string closest_within_two(const std::string& value,
                               const std::vector<std::string>& candidates);

}  // namespace plinger::common
