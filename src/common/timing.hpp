#pragma once

/// Wallclock and per-thread CPU timers.  The paper's Figure 1 plots both
/// total CPU time (their etime calls) and wallclock; we mirror that split.

#include <chrono>
#include <ctime>

namespace plinger {

/// Monotonic wallclock seconds since an arbitrary origin.
inline double wallclock_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

/// CPU seconds consumed by the calling thread.
inline double thread_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

/// CPU seconds consumed by the whole process (all threads).
inline double process_cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace plinger
