#pragma once

/// FLRW background evolution in conformal time.
///
/// All densities enter as grho_i(a) = 8 pi G a^2 rho_i / c^2 in Mpc^-2, so
/// the Friedmann equation is (a'/a)^2 = grho_total(a) / 3 with ' = d/dtau
/// and tau in Mpc.  The class tabulates tau(a) once at construction and
/// provides the forward and inverse mappings plus every background
/// quantity the perturbation equations need.

#include <memory>

#include "cosmo/nu_density.hpp"
#include "cosmo/params.hpp"
#include "math/spline.hpp"

namespace plinger::cosmo {

/// Densities split by species at a given scale factor, as grho values
/// (8 pi G a^2 rho, Mpc^-2).
struct GrhoComponents {
  double cdm = 0.0;
  double baryon = 0.0;
  double photon = 0.0;
  double nu_massless = 0.0;
  double nu_massive = 0.0;
  double lambda = 0.0;
  double total() const {
    return cdm + baryon + photon + nu_massless + nu_massive + lambda;
  }
};

/// Raw density constants of a Background — everything needed to
/// evaluate grho(a) analytically outside the class.  Exposed for fused
/// per-run caches (ThermoCache) that must reproduce the background
/// composition without re-deriving it from CosmoParams.
struct DensityConstants {
  double grhom = 0.0;         ///< 3 H0^2
  double cdm0 = 0.0;          ///< 8 pi G rho_cdm(a=1)
  double baryon0 = 0.0;
  double photon0 = 0.0;
  double nu_massless0 = 0.0;  ///< all massless species combined
  double nu_rel_one0 = 0.0;   ///< one massless species
  double lambda0 = 0.0;
  double xi0 = 0.0;           ///< m c^2/(k_B T_nu0) per massive species
  int n_massive_nu = 0;
};

/// The background cosmology.  Immutable and thread-safe after
/// construction; one instance is shared by all k-mode workers.
class Background {
 public:
  /// Validates params, solves the massive-neutrino mass (if any), and
  /// builds the tau(a) table from a = 1e-10 to a = 1.
  explicit Background(const CosmoParams& params);

  const CosmoParams& params() const { return params_; }

  /// Species densities at scale factor a.
  GrhoComponents grho(double a) const;

  /// Total pressure as gpres = 8 pi G a^2 p / c^2 (Mpc^-2).
  double gpres(double a) const;

  /// Conformal Hubble rate a'/a (Mpc^-1).
  double adotoa(double a) const;

  /// a''/a = (grho - 3 gpres) / 6 (Mpc^-2), needed by the tight-coupling
  /// slip expansion.
  double adotdota_over_a(double a) const;

  /// Conformal time at scale factor a (Mpc).
  double tau_of_a(double a) const;

  /// Scale factor at conformal time tau.
  double a_of_tau(double tau) const;

  /// ln a at conformal time tau — the raw table value a_of_tau()
  /// exponentiates.  Callers whose downstream lookups are ln-a-keyed
  /// (Recombination's *_lna accessors, ThermoCache) use this to skip the
  /// exp/log round-trip.
  double lna_of_tau(double tau) const;

  /// Conformal age tau(a=1) (Mpc).
  double conformal_age() const { return conformal_age_; }

  /// Conformal time of matter-radiation equality, and the equality scale
  /// factor (radiation = photons + all neutrinos while relativistic).
  double a_equality() const { return a_eq_; }

  /// Massive-neutrino machinery (nullptr when n_massive_nu == 0).
  const NuDensity* nu() const { return nu_.get(); }

  /// xi(a) = a m c^2 / (k_B T_nu0) for the massive species (0 if none).
  double nu_xi(double a) const { return xi0_ * a; }

  /// Neutrino mass in eV implied by omega_nu (0 if none).
  double nu_mass_ev() const { return nu_mass_ev_; }

  /// grho of a *single* massless neutrino species at a — the calibration
  /// unit for the massive-neutrino perturbation integrals.
  double grho_nu_rel_one(double a) const { return grho_nu_rel_one_ / (a * a); }

  /// The raw density constants (for fused caches; see DensityConstants).
  DensityConstants density_constants() const {
    DensityConstants d;
    d.grhom = grhom_;
    d.cdm0 = grho_c0_;
    d.baryon0 = grho_b0_;
    d.photon0 = grho_g0_;
    d.nu_massless0 = grho_nu_ml0_;
    d.nu_rel_one0 = grho_nu_rel_one_;
    d.lambda0 = grho_v0_;
    d.xi0 = xi0_;
    d.n_massive_nu = nu_ ? params_.n_massive_nu : 0;
    return d;
  }

 private:
  /// gpres from already-computed components (one grho(a) per caller).
  double gpres_of(const GrhoComponents& g, double a) const;

  CosmoParams params_;
  double grhom_ = 0.0;            ///< 3 H0^2
  double grho_c0_ = 0.0;          ///< 8 pi G rho_cdm(a=1): grhom*Omega_c
  double grho_b0_ = 0.0;
  double grho_g0_ = 0.0;
  double grho_nu_ml0_ = 0.0;      ///< all massless species combined
  double grho_nu_rel_one_ = 0.0;  ///< one massless species
  double grho_v0_ = 0.0;          ///< Lambda
  double xi0_ = 0.0;              ///< m c^2/(k_B T_nu0) per massive species
  double nu_mass_ev_ = 0.0;
  std::shared_ptr<const NuDensity> nu_;

  double conformal_age_ = 0.0;
  double a_eq_ = 0.0;
  plinger::math::CubicSpline tau_of_lna_;
  plinger::math::CubicSpline lna_of_tau_;
};

}  // namespace plinger::cosmo
