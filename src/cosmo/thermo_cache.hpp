#pragma once

/// Fused per-run thermodynamics/background cache for the perturbation
/// hot path.
///
/// Every right-hand-side evaluation of a k-mode needs the same handful
/// of per-a quantities: the species densities grho_i(a), the conformal
/// Hubble rate, the Thomson opacity, the baryon sound speed, and (with
/// massive neutrinos) the Fermi-Dirac density/pressure ratios.  Served
/// directly from Background/Recombination/NuDensity these cost 3-5
/// independent cubic-spline lookups — each a binary search over a
/// ~1k-4k-point table plus log/exp round-trips — repeated 8 times per
/// DVERK step, thousands of steps per mode.  Precomputing the
/// thermodynamics once and evaluating cheaply in the inner loop is the
/// classic Boltzmann-code optimization (Doran, astro-ph/0503277; COSMICS,
/// astro-ph/9506070).
///
/// ThermoCache fuses all of it into one uniform-in-ln(a) table built at
/// construction: a single O(1) index computation (one std::log, one
/// multiply, one floor) locates the interval, and all tabulated channels
/// interpolate from the same pair of adjacent 64-byte knots.  The
/// log/exp transforms of the source tables are hoisted into
/// construction; the analytic power-law pieces (grho components, nu_xi)
/// are evaluated exactly.  The cache is immutable after construction and
/// is shared read-only by all worker threads of a run — one instance per
/// run, zero synchronization, zero wire-protocol change.
///
/// Accuracy: the cache resamples the source splines on a ~3x finer grid
/// (16384 points over ln a in [ln 1e-11, 0] by default vs Recombination's
/// 4096 over [ln 1e-9, 0]), so the cache-vs-direct difference is far
/// below the source tables' own discretization error (see
/// tests/cosmo/test_thermo_cache.cpp for the enforced bounds).

#include <cstddef>
#include <vector>

#include "cosmo/background.hpp"
#include "cosmo/recombination.hpp"

namespace plinger::cosmo {

/// Everything the perturbation RHS needs at one scale factor.
struct ThermoPoint {
  GrhoComponents grho;
  double adotoa = 0.0;           ///< conformal Hubble rate a'/a (Mpc^-1)
  double adotdota_over_a = 0.0;  ///< a''/a = (grho - 3 gpres)/6 (Mpc^-2)
  double opacity = 0.0;          ///< Thomson dkappa/dtau (Mpc^-1)
  double cs2_baryon = 0.0;       ///< baryon sound speed squared (c = 1)
  double nu_xi = 0.0;            ///< a m c^2 / (k_B T_nu0), 0 if no massive nu
  double nu_rho_ratio = 1.0;     ///< rho(xi)/rho(0) for the massive species
  double grho_nu_rel_one = 0.0;  ///< grho of one massless species at a
};

/// The fused cache.  Immutable and thread-safe after construction.
class ThermoCache {
 public:
  struct Options {
    /// Table start.  Queries below a_min clamp the tabulated channels to
    /// the table edge (integrations never go there; the analytic
    /// channels stay exact at all a).
    double a_min = 1e-11;
    std::size_t n_points = 16384;  ///< uniform ln-a resolution
  };

  ThermoCache(const Background& bg, const Recombination& rec);
  ThermoCache(const Background& bg, const Recombination& rec,
              const Options& opts);

  /// All per-a quantities from one O(1) table lookup (a > 0).
  ThermoPoint eval(double a) const;

  std::size_t n_points() const { return n_; }
  double a_min() const { return a_min_; }

 private:
  /// One table knot: the four tabulated channels and their natural-spline
  /// second derivatives, interleaved so both knots of an interval are two
  /// adjacent 64-byte lines.
  struct Knot {
    double opac, cs2, rr, pr;      ///< values
    double opac2, cs22, rr2, pr2;  ///< d2/d(ln a)2
  };

  DensityConstants d_;
  bool has_nu_ = false;
  double n_massive_ = 0.0;  ///< n_massive_nu as a double, for the product
  double a_min_ = 0.0;
  double lna0_ = 0.0;   ///< ln a_min
  double h_ = 0.0;      ///< uniform ln-a spacing
  double inv_h_ = 0.0;
  double h2over6_ = 0.0;
  std::size_t n_ = 0;
  std::vector<Knot> knots_;
};

}  // namespace plinger::cosmo
