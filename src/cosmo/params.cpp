#include "cosmo/params.hpp"

#include <cmath>
#include <sstream>

#include "common/constants.hpp"
#include "common/error.hpp"

namespace plinger::cosmo {

namespace k = plinger::constants;

double CosmoParams::hubble0() const {
  return h / k::hubble_distance_mpc;
}

double CosmoParams::omega_gamma() const {
  const double energy_density = k::a_radiation * std::pow(t_cmb, 4);  // J/m^3
  const double mass_density = energy_density / (k::c_light * k::c_light);
  return mass_density / (k::rho_crit_h2 * h * h);
}

double CosmoParams::omega_nu_massless() const {
  // Each massless species carries (7/8) (4/11)^{4/3} of the photon energy.
  const double per_species =
      (7.0 / 8.0) * std::pow(k::t_nu_over_t_gamma, 4) * omega_gamma();
  return n_eff_massless * per_species;
}

void CosmoParams::close_universe() {
  const double budget = 1.0 - omega_b - omega_lambda - omega_nu -
                        omega_gamma() - omega_nu_massless();
  PLINGER_REQUIRE(budget >= 0.0,
                  "close_universe: omega_b + omega_lambda + omega_nu + "
                  "radiation exceed 1; no room left for omega_c "
                  "(budget = " +
                      std::to_string(budget) + ")");
  omega_c = budget;
}

void CosmoParams::validate() const {
  PLINGER_REQUIRE(h > 0.2 && h < 1.5, "h out of range (0.2, 1.5)");
  PLINGER_REQUIRE(omega_b > 0.0, "omega_b must be positive");
  PLINGER_REQUIRE(omega_c >= 0.0, "omega_c must be non-negative");
  PLINGER_REQUIRE(omega_nu >= 0.0, "omega_nu must be non-negative");
  PLINGER_REQUIRE(omega_nu == 0.0 || n_massive_nu > 0,
                  "omega_nu > 0 requires n_massive_nu > 0");
  PLINGER_REQUIRE(t_cmb > 1.0 && t_cmb < 10.0, "t_cmb out of range");
  PLINGER_REQUIRE(y_helium > 0.0 && y_helium < 0.5, "y_helium out of range");
  PLINGER_REQUIRE(n_eff_massless >= 0.0, "n_eff_massless must be >= 0");
  PLINGER_REQUIRE(n_s > 0.0 && n_s < 2.0, "n_s out of range");
  const double total = omega_matter() + omega_lambda + omega_gamma() +
                       omega_nu_massless();
  // The perturbation equations are written for a flat universe; the small
  // radiation contribution is accounted for inside Background, so the
  // *matter + lambda* budget must leave room for it.  We require the user
  // to specify a flat matter+lambda budget and quietly absorb radiation by
  // reducing the cosmological-constant/matter consistency requirement to
  // ~1e-3, matching LINGER usage.
  PLINGER_REQUIRE(std::abs(total - 1.0) < 1e-3,
                  "model must be flat: omega_m + omega_lambda + omega_r = 1"
                  " to within 1e-3");
}

std::string CosmoParams::summary() const {
  std::ostringstream os;
  os << "h=" << h << " Omega_c=" << omega_c << " Omega_b=" << omega_b
     << " Omega_L=" << omega_lambda << " Omega_nu=" << omega_nu
     << " T_cmb=" << t_cmb << "K Y_He=" << y_helium << " n_s=" << n_s
     << " N_massless=" << n_eff_massless << " N_massive=" << n_massive_nu;
  return os.str();
}

CosmoParams CosmoParams::standard_cdm() {
  CosmoParams p;
  p.h = 0.5;
  p.omega_b = 0.05;
  p.omega_lambda = 0.0;
  p.t_cmb = 2.726;
  p.y_helium = 0.24;
  p.n_eff_massless = 3.0;
  p.n_massive_nu = 0;
  p.omega_nu = 0.0;
  p.n_s = 1.0;
  // Flat: CDM absorbs what photons+neutrinos do not contribute.
  p.close_universe();
  return p;
}

CosmoParams CosmoParams::lambda_cdm() {
  CosmoParams p;
  p.h = 0.65;
  p.omega_b = 0.05;
  p.t_cmb = 2.726;
  p.y_helium = 0.24;
  p.n_eff_massless = 3.0;
  p.n_s = 1.0;
  p.omega_c = 0.30;
  p.omega_lambda =
      1.0 - p.omega_c - p.omega_b - p.omega_gamma() - p.omega_nu_massless();
  return p;
}

CosmoParams CosmoParams::mixed_dark_matter() {
  CosmoParams p;
  p.h = 0.5;
  p.omega_b = 0.05;
  p.omega_lambda = 0.0;
  p.t_cmb = 2.726;
  p.y_helium = 0.24;
  p.n_massive_nu = 1;
  p.omega_nu = 0.20;
  p.n_eff_massless = 2.0;
  p.n_s = 1.0;
  p.close_universe();
  return p;
}

}  // namespace plinger::cosmo
