#include "cosmo/thermo_cache.hpp"

#include <cmath>

#include "common/error.hpp"
#include "math/spline.hpp"

namespace plinger::cosmo {

ThermoCache::ThermoCache(const Background& bg, const Recombination& rec)
    : ThermoCache(bg, rec, Options{}) {}

ThermoCache::ThermoCache(const Background& bg, const Recombination& rec,
                         const Options& opts)
    : d_(bg.density_constants()) {
  PLINGER_REQUIRE(opts.a_min > 0.0 && opts.a_min < 1.0,
                  "ThermoCache: a_min must be in (0, 1)");
  PLINGER_REQUIRE(opts.n_points >= 8, "ThermoCache: n_points too small");

  const NuDensity* nu = bg.nu();
  has_nu_ = (nu != nullptr) && d_.n_massive_nu > 0;
  n_massive_ = static_cast<double>(d_.n_massive_nu);

  n_ = opts.n_points;
  a_min_ = opts.a_min;
  lna0_ = std::log(opts.a_min);
  h_ = -lna0_ / static_cast<double>(n_ - 1);
  inv_h_ = 1.0 / h_;
  h2over6_ = h_ * h_ / 6.0;

  const auto lna = plinger::math::linspace(lna0_, 0.0, n_);
  std::vector<double> opac(n_), cs2(n_), rr(n_, 1.0), pr(n_, 1.0);
  for (std::size_t i = 0; i < n_; ++i) {
    opac[i] = rec.opacity_lna(lna[i]);
    cs2[i] = rec.cs2_baryon_lna(lna[i]);
    if (has_nu_) {
      const double xi = d_.xi0 * std::exp(lna[i]);
      const double rho_ratio = nu->rho_ratio(xi);
      rr[i] = rho_ratio;
      pr[i] = nu->p_ratio(xi) / rho_ratio;  // (p/rho) / (1/3), -> 1 when rel.
    }
  }

  // Natural-spline second derivatives per channel, then interleave so one
  // interval touches exactly two adjacent knots.
  const plinger::math::CubicSpline s_opac(lna, opac);
  const plinger::math::CubicSpline s_cs2(lna, cs2);
  const plinger::math::CubicSpline s_rr(lna, rr);
  const plinger::math::CubicSpline s_pr(lna, pr);
  const auto opac2 = s_opac.second_derivs();
  const auto cs22 = s_cs2.second_derivs();
  const auto rr2 = s_rr.second_derivs();
  const auto pr2 = s_pr.second_derivs();

  knots_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    knots_[i] = Knot{opac[i], cs2[i], rr[i],    pr[i],
                     opac2[i], cs22[i], rr2[i], pr2[i]};
  }
}

ThermoPoint ThermoCache::eval(double a) const {
  const double lna = std::log(a);  // the only transcendental in this call

  // Tabulated channels clamp to the table edge below a_min: opacity runs
  // as a^-2 there, which the boundary cubic in ln a cannot follow — it
  // would swing to huge negative values within a few spacings.  The
  // integrators never start below a_min, so the clamp only guards stray
  // diagnostic queries; the analytic channels below stay exact at all a.
  const double lna_t = lna < lna0_ ? lna0_ : lna;

  // O(1) interval on the uniform ln-a grid; the index clamp keeps a > 1
  // on the last interval's cubic (standard spline extrapolation).
  const double u = (lna_t - lna0_) * inv_h_;
  std::size_t i = 0;
  if (u > 0.0) {
    i = static_cast<std::size_t>(u);
    if (i > n_ - 2) i = n_ - 2;
  }

  // Shared cubic weights for all four channels of the interval.
  const double x_lo = lna0_ + h_ * static_cast<double>(i);
  const double b = (lna_t - x_lo) * inv_h_;
  const double w = 1.0 - b;
  const double c0 = (w * w * w - w) * h2over6_;
  const double c1 = (b * b * b - b) * h2over6_;
  const Knot& lo = knots_[i];
  const Knot& hi = knots_[i + 1];

  ThermoPoint p;
  p.opacity = w * lo.opac + b * hi.opac + c0 * lo.opac2 + c1 * hi.opac2;
  p.cs2_baryon = w * lo.cs2 + b * hi.cs2 + c0 * lo.cs22 + c1 * hi.cs22;

  // Analytic power-law pieces: exact, no tabulation error.
  const double inv_a = 1.0 / a;
  const double inv_a2 = inv_a * inv_a;
  p.grho.cdm = d_.cdm0 * inv_a;
  p.grho.baryon = d_.baryon0 * inv_a;
  p.grho.photon = d_.photon0 * inv_a2;
  p.grho.nu_massless = d_.nu_massless0 * inv_a2;
  p.grho.lambda = d_.lambda0 * (a * a);
  p.grho_nu_rel_one = d_.nu_rel_one0 * inv_a2;

  // Reciprocal-multiply forms: the divider unit is the bottleneck of
  // this function after the log, and each product stays within one ulp
  // of the equivalent divide.
  constexpr double kThird = 1.0 / 3.0;
  double gpres = (p.grho.photon + p.grho.nu_massless) * kThird - p.grho.lambda;
  if (has_nu_) {
    const double rho_ratio = w * lo.rr + b * hi.rr + c0 * lo.rr2 + c1 * hi.rr2;
    const double p_over_rho3 =
        w * lo.pr + b * hi.pr + c0 * lo.pr2 + c1 * hi.pr2;
    p.nu_rho_ratio = rho_ratio;
    p.nu_xi = d_.xi0 * a;
    p.grho.nu_massive = p.grho_nu_rel_one * n_massive_ * rho_ratio;
    gpres += p.grho.nu_massive * kThird * p_over_rho3;
  }

  const double total = p.grho.total();
  p.adotoa = std::sqrt(total * kThird);
  p.adotdota_over_a = (total - 3.0 * gpres) * (1.0 / 6.0);
  return p;
}

}  // namespace plinger::cosmo
