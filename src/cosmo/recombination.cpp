#include "cosmo/recombination.hpp"

#include <cmath>
#include <numbers>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "math/ode.hpp"

namespace plinger::cosmo {

namespace k = plinger::constants;

namespace {

/// Saha factor S(T, E) = (2 pi m_e k T / h^2)^{3/2} e^{-E/kT} in m^-3.
/// Returns 0 on deep underflow.
double saha_factor(double t_kelvin, double e_ion_joule) {
  const double x = e_ion_joule / (k::k_boltzmann * t_kelvin);
  if (x > 680.0) return 0.0;
  const double pre = 2.0 * std::numbers::pi * k::m_electron *
                     k::k_boltzmann * t_kelvin /
                     (k::h_planck * k::h_planck);
  return std::pow(pre, 1.5) * std::exp(-x);
}

/// RECFAST case-B hydrogen recombination coefficient (m^3/s), including
/// the multilevel fudge factor.
double alpha_b(double t_kelvin, double fudge) {
  const double t4 = t_kelvin / 1e4;
  return fudge * 1e-19 * 4.309 * std::pow(t4, -0.6166) /
         (1.0 + 0.6703 * std::pow(t4, 0.5300));
}

/// Photoionization rate from n=2, beta = alpha (2 pi m_e k T/h^2)^{3/2}
/// e^{-E_2/kT} (s^-1).
double beta_b(double t_kelvin, double fudge) {
  return alpha_b(t_kelvin, fudge) * saha_factor(t_kelvin, k::E_ion_H_n2);
}

}  // namespace

Recombination::Recombination(const Background& bg)
    : Recombination(bg, Options{}) {}

Recombination::Recombination(const Background& bg, const Options& opts)
    : bg_(bg) {
  const CosmoParams& p = bg.params();
  const double y = p.y_helium;
  f_he_ = y / (4.0 * (1.0 - y));
  n_h0_ = (1.0 - y) * p.omega_b * k::rho_crit_h2 * p.h * p.h / k::m_hydrogen;

  const std::size_t n = opts.n_points;
  auto lna = plinger::math::linspace(std::log(opts.a_start), 0.0, n);

  auto t_gamma = [&](double a) { return p.t_cmb / a; };
  auto n_h = [&](double a) { return n_h0_ / (a * a * a); };

  // Saha equilibrium x_e (fixed-point over the coupled H/He stages).
  auto saha_xe = [&](double a, double& x_h_out) {
    const double t = t_gamma(a);
    const double nh = n_h(a);
    const double r_h = saha_factor(t, k::E_ion_H) / nh;
    const double r_he1 = 4.0 * saha_factor(t, k::E_ion_HeI) / nh;
    const double r_he2 = saha_factor(t, k::E_ion_HeII) / nh;
    double xe = 1.0 + 2.0 * f_he_;
    double xh = 1.0;
    for (int it = 0; it < 60; ++it) {
      xh = (r_h > 0.0) ? r_h / (xe + r_h) : 0.0;
      double y2 = 0.0, y3 = 0.0;
      if (r_he1 > 0.0) {
        y2 = 1.0 / (1.0 + xe / r_he1 + ((r_he2 > 0.0) ? r_he2 / xe : 0.0));
        y3 = (r_he2 > 0.0) ? y2 * r_he2 / xe : 0.0;
      }
      const double xe_new = xh + f_he_ * (y2 + 2.0 * y3);
      if (std::abs(xe_new - xe) < 1e-14) {
        xe = xe_new;
        break;
      }
      xe = 0.5 * (xe + xe_new);
    }
    x_h_out = xh;
    return xe;
  };

  std::vector<double> xe(n), tb(n);
  std::size_t i_switch = n;  // first index evolved by the ODE
  for (std::size_t i = 0; i < n; ++i) {
    const double a = std::exp(lna[i]);
    double xh = 1.0;
    xe[i] = saha_xe(a, xh);
    tb[i] = t_gamma(a);
    if (xh < opts.saha_exit_xh) {
      i_switch = i;
      break;
    }
  }
  PLINGER_REQUIRE(i_switch < n, "recombination: Saha exit never reached");

  // Peebles + matter-temperature ODE from the switch point to a = 1.
  // State: y = [x_H, T_b]; independent variable ln a.
  auto rhs = [&](double lna_t, std::span<const double> yy,
                 std::span<double> dy) {
    const double a = std::exp(lna_t);
    const double x_h = std::clamp(yy[0], 0.0, 1.0);
    const double t_b = std::max(1e-10, yy[1]);
    const double t_r = t_gamma(a);
    const double nh = n_h(a);
    const double h_cosmic =
        bg_.adotoa(a) / a * k::c_light / k::mpc_in_m;  // s^-1

    // Residual He+ from Saha (tiny in the ODE regime, vanishes quickly).
    const double r_he1 = 4.0 * saha_factor(t_r, k::E_ion_HeI) / nh;
    double x_he = 0.0;
    if (r_he1 > 0.0) {
      // Solve y2 with x_e ~ x_h + f y2 (single iteration is ample here).
      const double y2 = 1.0 / (1.0 + std::max(x_h, 1e-6) / r_he1);
      x_he = f_he_ * y2;
    }
    const double x_e = x_h + x_he;

    // Peebles C-factor.
    const double lam_alpha3 = std::pow(k::lambda_lyman_alpha, 3);
    const double kk = lam_alpha3 / (8.0 * std::numbers::pi * h_cosmic);
    const double n_1s = (1.0 - x_h) * nh;
    const double beta = beta_b(t_b, opts.fudge);
    const double c_p = (1.0 + kk * k::lambda_2s1s * n_1s) /
                       (1.0 + kk * (k::lambda_2s1s + beta) * n_1s);

    // Net rate (s^-1): photoionization from n=2 minus case-B recomb.
    const double boltz = std::exp(
        -std::min(680.0, k::E_lyman_alpha / (k::k_boltzmann * t_b)));
    const double dxh_dt =
        c_p * (beta * (1.0 - x_h) * boltz -
               alpha_b(t_b, opts.fudge) * nh * x_e * x_h);

    // Compton coupling of T_b to T_r.
    const double t_r4 = std::pow(t_r, 4);
    const double compton =
        (8.0 / 3.0) * k::sigma_thomson * k::a_radiation * t_r4 /
        (k::m_electron * k::c_light) * x_e / (1.0 + f_he_ + x_e);
    const double dtb_dt = -2.0 * h_cosmic * t_b + compton * (t_r - t_b);

    dy[0] = dxh_dt / h_cosmic;  // d/dln a = (1/H) d/dt
    dy[1] = dtb_dt / h_cosmic;
  };

  plinger::math::Dverk integrator;
  plinger::math::OdeOptions ode_opts;
  ode_opts.rtol = 1e-8;
  ode_opts.atol = 1e-12;

  std::vector<double> state = {xe[i_switch] - 0.0, tb[i_switch]};
  // Start the ODE from pure-hydrogen Saha at the switch point (He is
  // essentially neutral there); subtract the He contribution.
  {
    double xh = 1.0;
    const double a_sw = std::exp(lna[i_switch]);
    (void)saha_xe(a_sw, xh);
    state[0] = xh;
  }
  for (std::size_t i = i_switch; i + 1 < n; ++i) {
    integrator.integrate(rhs, lna[i], lna[i + 1], state, ode_opts);
    const double a = std::exp(lna[i + 1]);
    const double t_r = t_gamma(a);
    const double nh = n_h(a);
    const double r_he1 = 4.0 * saha_factor(t_r, k::E_ion_HeI) / nh;
    double x_he = 0.0;
    if (r_he1 > 0.0) {
      const double y2 = 1.0 / (1.0 + std::max(state[0], 1e-6) / r_he1);
      x_he = f_he_ * y2;
    }
    xe[i + 1] = std::clamp(state[0], 0.0, 1.0) + x_he;
    tb[i + 1] = state[1];
  }

  // Optional reionization: raise x_e back to fully-ionized hydrogen plus
  // singly-ionized helium below z_reion.
  if (opts.z_reion > 0.0) {
    const double xe_target = 1.0 + f_he_;
    for (std::size_t i = 0; i < n; ++i) {
      const double z = 1.0 / std::exp(lna[i]) - 1.0;
      const double f =
          0.5 * (1.0 + std::tanh((opts.z_reion - z) / opts.dz_reion));
      xe[i] = xe[i] + (xe_target - xe[i]) * f;
    }
  }

  // Splines are built over log(values): everything tabulated is a
  // positive power law of a outside the recombination era, so log-space
  // linear extrapolation continues the tables *exactly* beyond both ends
  // (the deep radiation era in particular, where modes with very large k
  // start before the table).
  std::vector<double> log_buf(n);
  auto log_spline = [&](const std::vector<double>& v) {
    for (std::size_t i = 0; i < n; ++i) {
      log_buf[i] = std::log(std::max(v[i], 1e-300));
    }
    return plinger::math::CubicSpline(lna, log_buf);
  };
  xe_of_lna_ = log_spline(xe);
  tb_of_lna_ = log_spline(tb);

  // Baryon sound speed squared.
  std::vector<double> cs2(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double mu = 1.0 / ((1.0 - y) * (1.0 + xe[i]) + y / 4.0);
    const double dlntb = tb_of_lna_.derivative(lna[i]);
    cs2[i] = k::k_boltzmann * tb[i] /
             (mu * k::m_hydrogen * k::c_light * k::c_light) *
             (1.0 - dlntb / 3.0);
  }
  cs2_of_lna_ = log_spline(cs2);

  // Thomson opacity (Mpc^-1).
  std::vector<double> opac(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = std::exp(lna[i]);
    opac[i] = xe[i] * n_h0_ * k::sigma_thomson * k::mpc_in_m / (a * a);
  }
  opac_of_lna_ = log_spline(opac);

  // kappa(tau) and the sound horizon on a tau grid.
  std::vector<double> tau(n), rs(n);
  for (std::size_t i = 0; i < n; ++i) {
    tau[i] = bg_.tau_of_a(std::exp(lna[i]));
  }
  // Optical depth from tau to today, integrated backwards on the grid
  // (trapezoid is adequate at this resolution; the spline smooths it).
  std::vector<double> kap(n, 0.0);
  for (std::size_t i = n - 1; i-- > 0;) {
    const double dt = tau[i + 1] - tau[i];
    kap[i] = kap[i + 1] + 0.5 * dt * (opac[i] + opac[i + 1]);
  }
  kappa_of_tau_ = plinger::math::CubicSpline(tau, kap);

  // Sound horizon: r_s(tau) = int c_s dtau with the photon-baryon fluid
  // speed; start from the analytic radiation-era value r_s ~ tau/sqrt(3).
  const double om_g = p.omega_gamma();
  auto r_b = [&](double a) { return 0.75 * p.omega_b / om_g * a; };
  rs[0] = tau[0] / std::sqrt(3.0 * (1.0 + r_b(std::exp(lna[0]))));
  for (std::size_t i = 1; i < n; ++i) {
    const double a0 = std::exp(lna[i - 1]), a1 = std::exp(lna[i]);
    const double cs0 = 1.0 / std::sqrt(3.0 * (1.0 + r_b(a0)));
    const double cs1 = 1.0 / std::sqrt(3.0 * (1.0 + r_b(a1)));
    rs[i] = rs[i - 1] + 0.5 * (tau[i] - tau[i - 1]) * (cs0 + cs1);
  }
  rs_of_tau_ = plinger::math::CubicSpline(tau, rs);

  // Visibility peak.
  double best_g = -1.0;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double g = opac[i] * std::exp(-kap[i]);
    if (g > best_g) {
      best_g = g;
      tau_star_ = tau[i];
      z_star_ = 1.0 / std::exp(lna[i]) - 1.0;
    }
  }
}

double Recombination::x_e_lna(double lna) const {
  return std::exp(xe_of_lna_(lna));
}

double Recombination::t_baryon_lna(double lna) const {
  return std::exp(tb_of_lna_(lna));
}

double Recombination::cs2_baryon_lna(double lna) const {
  return std::exp(cs2_of_lna_(lna));
}

double Recombination::opacity_lna(double lna) const {
  return std::exp(opac_of_lna_(lna));
}

double Recombination::kappa(double tau) const {
  if (tau >= kappa_of_tau_.x_back()) return 0.0;
  return std::max(0.0, kappa_of_tau_(tau));
}

double Recombination::kappa(double tau, std::size_t& hint) const {
  if (tau >= kappa_of_tau_.x_back()) return 0.0;
  return std::max(0.0, kappa_of_tau_(tau, hint));
}

double Recombination::visibility(double tau) const {
  return opacity_lna(bg_.lna_of_tau(tau)) *
         std::exp(-std::min(680.0, kappa(tau)));
}

double Recombination::visibility(double tau, std::size_t& hint) const {
  return opacity_lna(bg_.lna_of_tau(tau)) *
         std::exp(-std::min(680.0, kappa(tau, hint)));
}

double Recombination::sound_horizon(double tau) const {
  return rs_of_tau_(tau);
}

double Recombination::sound_horizon(double tau, std::size_t& hint) const {
  return rs_of_tau_(tau, hint);
}

}  // namespace plinger::cosmo
