#pragma once

/// Massive-neutrino phase-space thermodynamics.
///
/// LINGER integrates the massive-neutrino Boltzmann hierarchy over the
/// comoving 3-momentum q with no free-streaming approximation (paper §2).
/// This module supplies everything q-related:
///
///  * the background energy-density and pressure integrals
///      I_rho(xi) = \int q^2 sqrt(q^2 + xi^2) f0(q) dq,
///      I_p(xi)   = (1/3) \int q^4 / sqrt(q^2 + xi^2) f0(q) dq,
///    with f0(q) = 1/(e^q + 1) and xi = a m c^2 / (k_B T_nu0),
///    tabulated in log(xi) with exact relativistic/non-relativistic limits,
///  * the Gauss-Laguerre q-grid (nodes, weights including q^2 f0, and
///    d ln f0 / d ln q) used by the perturbation hierarchy,
///  * the mass <-> Omega_nu conversion.

#include <cstddef>
#include <vector>

#include "math/spline.hpp"

namespace plinger::cosmo {

/// One quadrature node of the massive-neutrino momentum grid.
struct NuQuadPoint {
  double q;          ///< comoving momentum in units of k_B T_nu0
  double weight;     ///< w_i q_i^2 f0(q_i) e^{q_i} ... folded so that
                     ///< sum_i weight_i g(q_i) ~ \int q^2 f0(q) g(q) dq
  double dlnf0dlnq;  ///< d ln f0 / d ln q = -q / (1 + e^{-q})
};

/// Fermi-Dirac background integrals and the perturbation q-grid for one
/// massive neutrino species.  Thread-safe after construction (all methods
/// const).
class NuDensity {
 public:
  /// n_table: resolution of the log(xi) spline table;
  /// n_q: number of Gauss-Laguerre nodes for the perturbation grid.
  explicit NuDensity(std::size_t n_table = 256, std::size_t n_q = 16);

  /// rho(xi) / rho(0): energy density relative to the massless limit.
  double rho_ratio(double xi) const;

  /// p(xi) / p(0): pressure relative to the massless limit
  /// (p(0) = rho(0) / 3).
  double p_ratio(double xi) const;

  /// d(rho_ratio)/d(xi), used for d(grho)/da.
  double drho_ratio_dxi(double xi) const;

  /// I_rho(0) = 7 pi^4 / 120.
  static double i_rho_massless();

  /// The perturbation momentum grid (fixed at construction).
  const std::vector<NuQuadPoint>& q_grid() const { return q_grid_; }

  /// sum_i weight_i q_i ~ \int q^3 f0 dq — the massless normalization of
  /// the grid, used to normalize perturbation integrals consistently.
  double grid_norm_massless() const { return grid_norm_; }

  /// Solve xi0 = m c^2/(k_B T_nu0) such that one species contributes the
  /// given Omega_nu (per species) for the given photon density parameter
  /// omega_gamma.  Returns xi0; the neutrino mass in eV is
  /// xi0 * k_B * T_nu0 / eV.
  double xi0_for_omega(double omega_nu_per_species,
                       double omega_gamma) const;

 private:
  plinger::math::CubicSpline log_rho_;  ///< log I_rho vs log xi
  plinger::math::CubicSpline log_p_;    ///< log I_p vs log xi
  double xi_min_, xi_max_;
  std::vector<NuQuadPoint> q_grid_;
  double grid_norm_ = 0.0;
};

}  // namespace plinger::cosmo
