#pragma once

/// Cosmological model parameters.
///
/// The paper's production model is "standard Cold Dark Matter": a flat
/// Omega = 1 universe with h = 0.5, Omega_b = 0.05, three massless
/// neutrino species, a scale-invariant (n_s = 1) primordial spectrum and
/// T_cmb = 2.726 K, COBE-normalized.  We also provide Lambda-CDM and
/// mixed dark matter (massive-neutrino) presets since LINGER supports a
/// cosmological constant and massive neutrinos.

#include <string>

namespace plinger::cosmo {

/// Input parameters of a cosmological model.  All Omegas are present-day
/// density parameters.  Radiation (photon + massless neutrino) densities
/// are derived from T_cmb, not specified.
struct CosmoParams {
  double h = 0.5;             ///< H0 / (100 km/s/Mpc)
  double omega_c = 0.95;      ///< cold dark matter
  double omega_b = 0.05;      ///< baryons
  double omega_lambda = 0.0;  ///< cosmological constant
  double omega_nu = 0.0;      ///< massive neutrinos (converted to a mass)
  double t_cmb = 2.726;       ///< CMB temperature today (K)
  double y_helium = 0.24;     ///< primordial helium mass fraction
  double n_eff_massless = 3.0;  ///< number of massless neutrino species
  int n_massive_nu = 0;         ///< number of degenerate massive species
  double n_s = 1.0;             ///< primordial spectral index

  /// Hubble rate today in Mpc^-1 (c = 1 units).
  double hubble0() const;

  /// Photon density parameter Omega_gamma derived from t_cmb and h.
  double omega_gamma() const;

  /// Massless-neutrino density parameter (n_eff_massless species).
  double omega_nu_massless() const;

  /// Total matter Omega (CDM + baryons + massive neutrinos).
  double omega_matter() const { return omega_c + omega_b + omega_nu; }

  /// Close the universe to flatness by deriving omega_c from everything
  /// else: omega_c = 1 - omega_b - omega_lambda - omega_nu - omega_gamma
  /// - omega_nu_massless.  This is the one canonical form of the closure
  /// every entry point used to hand-roll; it throws InvalidArgument when
  /// the remaining budget is negative (the hand-rolled versions silently
  /// produced a negative omega_c and NaN backgrounds downstream).
  void close_universe();

  /// Throws InvalidArgument when parameters are unphysical or unsupported
  /// (the perturbation module requires a flat universe; the background
  /// tolerates |1 - Omega_total| < 1e-8 only).
  void validate() const;

  /// Human-readable one-line summary.
  std::string summary() const;

  // --- presets ---
  /// The paper's production model (Figures 2 and 3).
  static CosmoParams standard_cdm();
  /// A 1995-era Lambda-CDM alternative (h = 0.65, Omega_m = 0.35).
  static CosmoParams lambda_cdm();
  /// Mixed dark matter: one massive neutrino species with
  /// Omega_nu = 0.2 (the C+HDM models of the early 90s).
  static CosmoParams mixed_dark_matter();
};

}  // namespace plinger::cosmo
