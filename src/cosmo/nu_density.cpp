#include "cosmo/nu_density.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"
#include "math/brent.hpp"
#include "math/quadrature.hpp"

namespace plinger::cosmo {

namespace {
constexpr double kZeta3 = 1.2020569031595943;

/// \int q^2 f0 dq = (3/2) zeta(3).
double number_integral() { return 1.5 * kZeta3; }
}  // namespace

double NuDensity::i_rho_massless() {
  const double pi4 = std::pow(std::numbers::pi, 4);
  return 7.0 * pi4 / 120.0;
}

NuDensity::NuDensity(std::size_t n_table, std::size_t n_q) {
  PLINGER_REQUIRE(n_table >= 16, "NuDensity: n_table too small");
  PLINGER_REQUIRE(n_q >= 4 && n_q <= 128, "NuDensity: n_q out of range");

  // High-accuracy rule for the background tables (independent of the
  // perturbation grid so the table accuracy does not limit n_q choices).
  const auto rule = plinger::math::gauss_laguerre(64);

  auto integrals = [&rule](double xi, double& i_rho, double& i_p) {
    i_rho = 0.0;
    i_p = 0.0;
    for (std::size_t i = 0; i < rule.nodes.size(); ++i) {
      const double q = rule.nodes[i];
      // gauss_laguerre weights absorb e^{-q}; restore f0 = 1/(e^q+1)
      // via f0 e^q = 1/(1+e^{-q}).
      const double w = rule.weights[i] * q * q / (1.0 + std::exp(-q));
      const double eps = std::sqrt(q * q + xi * xi);
      i_rho += w * eps;
      i_p += w * q * q / (3.0 * eps);
    }
  };

  xi_min_ = 1e-4;
  xi_max_ = 1e7;
  const auto log_xi = plinger::math::linspace(std::log(xi_min_),
                                              std::log(xi_max_),
                                              n_table);
  std::vector<double> log_rho(n_table), log_p(n_table);
  for (std::size_t i = 0; i < n_table; ++i) {
    double i_rho = 0.0, i_p = 0.0;
    integrals(std::exp(log_xi[i]), i_rho, i_p);
    log_rho[i] = std::log(i_rho);
    log_p[i] = std::log(i_p);
  }
  log_rho_ = plinger::math::CubicSpline(log_xi, log_rho);
  log_p_ = plinger::math::CubicSpline(log_xi, log_p);

  // Perturbation q-grid.
  const auto pert = plinger::math::gauss_laguerre(n_q);
  q_grid_.resize(n_q);
  grid_norm_ = 0.0;
  for (std::size_t i = 0; i < n_q; ++i) {
    const double q = pert.nodes[i];
    NuQuadPoint pt;
    pt.q = q;
    pt.weight = pert.weights[i] * q * q / (1.0 + std::exp(-q));
    pt.dlnf0dlnq = -q / (1.0 + std::exp(-q));
    q_grid_[i] = pt;
    grid_norm_ += pt.weight * q;
  }
}

double NuDensity::rho_ratio(double xi) const {
  PLINGER_REQUIRE(xi >= 0.0, "NuDensity: xi must be >= 0");
  if (xi <= xi_min_) {
    // Relativistic: I_rho ~ I_rho(0) + xi^2/2 \int q f0 = I(0) + xi^2 pi^2/24.
    const double pi2 = std::numbers::pi * std::numbers::pi;
    return 1.0 + (xi * xi * pi2 / 24.0) / i_rho_massless();
  }
  if (xi >= xi_max_) {
    // Non-relativistic: I_rho ~ xi * (3/2) zeta(3) + O(1/xi).
    return xi * number_integral() / i_rho_massless();
  }
  return std::exp(log_rho_(std::log(xi))) / i_rho_massless();
}

double NuDensity::p_ratio(double xi) const {
  PLINGER_REQUIRE(xi >= 0.0, "NuDensity: xi must be >= 0");
  const double i_p0 = i_rho_massless() / 3.0;
  if (xi <= xi_min_) {
    const double pi2 = std::numbers::pi * std::numbers::pi;
    // I_p ~ I_p(0) - xi^2/6 \int q f0 = I_p(0) - xi^2 pi^2/72.
    return 1.0 - (xi * xi * pi2 / 72.0) / i_p0;
  }
  if (xi >= xi_max_) {
    // p ~ rho <q^2>/(3 xi^2): vanishes as 1/xi.
    return std::exp(log_p_(std::log(xi_max_))) / i_p0 * (xi_max_ / xi);
  }
  return std::exp(log_p_(std::log(xi))) / i_p0;
}

double NuDensity::drho_ratio_dxi(double xi) const {
  if (xi <= xi_min_) {
    const double pi2 = std::numbers::pi * std::numbers::pi;
    return 2.0 * xi * pi2 / 24.0 / i_rho_massless();
  }
  if (xi >= xi_max_) {
    return number_integral() / i_rho_massless();
  }
  const double lx = std::log(xi);
  // d/dxi exp(log_rho(log xi)) = I_rho/xi * dlogI/dlogxi.
  return std::exp(log_rho_(lx)) / xi * log_rho_.derivative(lx) /
         i_rho_massless();
}

double NuDensity::xi0_for_omega(double omega_nu_per_species,
                                double omega_gamma) const {
  PLINGER_REQUIRE(omega_nu_per_species > 0.0,
                  "xi0_for_omega: omega must be positive");
  // One massless species contributes (7/8)(4/11)^{4/3} omega_gamma; the
  // massive species contributes that times rho_ratio(xi0).
  const double massless =
      (7.0 / 8.0) * std::pow(4.0 / 11.0, 4.0 / 3.0) * omega_gamma;
  const double target = omega_nu_per_species / massless;
  PLINGER_REQUIRE(target > 1.0,
                  "omega_nu below the massless floor: no solution for m");
  const double log_xi0 = plinger::math::brent_root(
      [this, target](double log_xi) {
        return rho_ratio(std::exp(log_xi)) - target;
      },
      std::log(1e-6), std::log(1e6), 1e-12);
  return std::exp(log_xi0);
}

}  // namespace plinger::cosmo
