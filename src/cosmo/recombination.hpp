#pragma once

/// Recombination and thermal history.
///
/// The paper claims "accurate treatments of hydrogen and helium
/// recombination, decoupling of photons and baryons, and Thomson
/// scattering" (§2).  We implement the standard treatment of that era
/// plus the later RECFAST calibration factor:
///
///  * helium via Saha equilibrium (HeIII -> HeII -> HeI),
///  * hydrogen via Saha while x_H > 0.985, then the Peebles (1968)
///    effective three-level ODE with the RECFAST case-B recombination
///    coefficient and the 1.14 multilevel fudge factor,
///  * the baryon (matter) temperature ODE with Compton coupling,
///  * Thomson opacity dkappa/dtau, the optical depth kappa(tau), and the
///    visibility function g(tau) = kappa' e^{-kappa}.
///
/// Everything is tabulated once at construction on a log-a grid and then
/// served through splines; the class is immutable and thread-safe
/// afterwards, shared by all k-mode workers.

#include <cmath>
#include <cstddef>

#include "cosmo/background.hpp"
#include "math/spline.hpp"

namespace plinger::cosmo {

/// Thermal history and Thomson opacity of a cosmological model.
class Recombination {
 public:
  /// Tuning knobs; the defaults reproduce the standard treatment.
  struct Options {
    double a_start = 1e-9;      ///< table start (fully ionized there)
    std::size_t n_points = 4096;  ///< log-a table resolution
    double saha_exit_xh = 0.985;  ///< switch Saha -> Peebles ODE
    double fudge = 1.14;          ///< RECFAST multilevel calibration
    /// Optional late reionization (an extension: the paper's standard
    /// CDM runs have none).  z_reion <= 0 disables it; otherwise x_e is
    /// raised to the fully-ionized H + singly-ionized He value over a
    /// tanh of width dz_reion.  Gas reheating is not modeled (it has no
    /// effect on the Thomson opacity, which is all the perturbations
    /// see).
    double z_reion = 0.0;
    double dz_reion = 1.5;
  };

  explicit Recombination(const Background& bg);
  Recombination(const Background& bg, const Options& opts);

  /// Free-electron fraction x_e = n_e / n_H at scale factor a.
  double x_e(double a) const { return x_e_lna(std::log(a)); }

  /// Baryon (matter) temperature in K.
  double t_baryon(double a) const { return t_baryon_lna(std::log(a)); }

  /// Baryon sound speed squared in c = 1 units:
  /// c_s^2 = (k_B T_b / mu m_H c^2) (1 - (1/3) dln T_b/dln a).
  double cs2_baryon(double a) const { return cs2_baryon_lna(std::log(a)); }

  /// Thomson opacity dkappa/dtau = x_e n_H sigma_T a (Mpc^-1).
  double opacity(double a) const { return opacity_lna(std::log(a)); }

  /// ln a-keyed variants of the four thermal accessors.  Every table is
  /// ln a-gridded, so callers that already hold ln a (ThermoCache
  /// construction, visibility via Background::lna_of_tau) skip one
  /// std::log per quantity by calling these directly.
  double x_e_lna(double lna) const;
  double t_baryon_lna(double lna) const;
  double cs2_baryon_lna(double lna) const;
  double opacity_lna(double lna) const;

  /// Optical depth from conformal time tau to today.
  double kappa(double tau) const;

  /// Hinted kappa for monotone tau sweeps (line-of-sight integrals): the
  /// caller-held hint keeps the non-uniform tau-spline lookup O(1).
  double kappa(double tau, std::size_t& hint) const;

  /// Visibility function g(tau) = (dkappa/dtau) e^{-kappa(tau)} (Mpc^-1);
  /// integrates to 1 over tau.
  double visibility(double tau) const;

  /// Hinted visibility for monotone tau sweeps; `hint` caches the
  /// kappa-spline interval between calls.
  double visibility(double tau, std::size_t& hint) const;

  /// Conformal time of the visibility peak ("recombination", Mpc).
  double tau_star() const { return tau_star_; }

  /// Redshift of the visibility peak.
  double z_star() const { return z_star_; }

  /// Photon-baryon sound horizon r_s(tau) = int_0^tau dtau'/sqrt(3(1+R_b)),
  /// R_b = 3 rho_b / (4 rho_gamma) (Mpc).
  double sound_horizon(double tau) const;

  /// Hinted sound horizon for monotone tau sweeps.
  double sound_horizon(double tau, std::size_t& hint) const;

  /// Helium-to-hydrogen nucleus ratio f_He = Y / (4(1-Y)).
  double f_helium() const { return f_he_; }

  /// Hydrogen nucleus number density today (m^-3).
  double n_h0() const { return n_h0_; }

 private:
  const Background& bg_;
  double f_he_ = 0.0;
  double n_h0_ = 0.0;
  double tau_star_ = 0.0;
  double z_star_ = 0.0;

  plinger::math::CubicSpline xe_of_lna_;
  plinger::math::CubicSpline tb_of_lna_;
  plinger::math::CubicSpline cs2_of_lna_;
  plinger::math::CubicSpline opac_of_lna_;
  plinger::math::CubicSpline kappa_of_tau_;
  plinger::math::CubicSpline rs_of_tau_;
};

}  // namespace plinger::cosmo
