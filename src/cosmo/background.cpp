#include "cosmo/background.hpp"

#include <cmath>

#include "common/constants.hpp"
#include "common/error.hpp"
#include "math/brent.hpp"
#include "math/quadrature.hpp"

namespace plinger::cosmo {

namespace k = plinger::constants;

Background::Background(const CosmoParams& params) : params_(params) {
  params_.validate();

  const double h0 = params_.hubble0();       // Mpc^-1
  grhom_ = 3.0 * h0 * h0;                    // 3 H0^2
  grho_c0_ = grhom_ * params_.omega_c;
  grho_b0_ = grhom_ * params_.omega_b;
  grho_g0_ = grhom_ * params_.omega_gamma();
  grho_nu_ml0_ = grhom_ * params_.omega_nu_massless();
  grho_nu_rel_one_ = grhom_ * (7.0 / 8.0) *
                     std::pow(k::t_nu_over_t_gamma, 4) *
                     params_.omega_gamma();
  grho_v0_ = grhom_ * params_.omega_lambda;

  if (params_.n_massive_nu > 0 && params_.omega_nu > 0.0) {
    nu_ = std::make_shared<const NuDensity>();
    const double omega_per =
        params_.omega_nu / static_cast<double>(params_.n_massive_nu);
    xi0_ = nu_->xi0_for_omega(omega_per, params_.omega_gamma());
    const double t_nu0 = params_.t_cmb * k::t_nu_over_t_gamma;
    nu_mass_ev_ = xi0_ * k::k_boltzmann * t_nu0 / k::eV;
  }

  // ---- tau(a) table: integrate dtau/da = 1/(a^2 H) = 1/(a * adotoa).
  // In the radiation era a ~ tau, so tau(a_min) is given analytically by
  // tau = a / (H0 sqrt(Omega_r,total)) with relativistic neutrinos.
  const double a_min = 1e-10;
  const std::size_t n_pts = 1024;
  auto lna = plinger::math::linspace(std::log(a_min), 0.0, n_pts);

  // Relativistic total at a_min (massive species are ultra-relativistic
  // there because xi(a_min) << 1).
  const double grho_rel0 =
      grho_g0_ + grho_nu_ml0_ +
      (nu_ ? grho_nu_rel_one_ * static_cast<double>(params_.n_massive_nu) *
                 nu_->rho_ratio(nu_xi(a_min))
           : 0.0);
  std::vector<double> tau(n_pts);
  tau[0] = a_min / std::sqrt(grho_rel0 / 3.0);

  // Cumulative Gauss-Legendre integration of dtau/da per table interval.
  const auto rule = plinger::math::gauss_legendre(8);
  for (std::size_t i = 1; i < n_pts; ++i) {
    const double a0 = std::exp(lna[i - 1]);
    const double a1 = std::exp(lna[i]);
    double acc = 0.0;
    for (std::size_t j = 0; j < rule.nodes.size(); ++j) {
      const double a =
          0.5 * (a0 + a1) + 0.5 * (a1 - a0) * rule.nodes[j];
      acc += 0.5 * (a1 - a0) * rule.weights[j] / (a * adotoa(a));
    }
    tau[i] = tau[i - 1] + acc;
  }
  tau_of_lna_ = plinger::math::CubicSpline(lna, tau);
  lna_of_tau_ = plinger::math::CubicSpline(tau, lna);
  conformal_age_ = tau.back();

  // Matter-radiation equality (massive neutrinos counted as radiation: at
  // equality they are still relativistic for any realistic mass).
  const double grho_m0 = grho_c0_ + grho_b0_ + grhom_ * params_.omega_nu;
  const double grho_r0 = grho_g0_ + grho_nu_ml0_ +
                         (nu_ ? grho_nu_rel_one_ *
                                    static_cast<double>(params_.n_massive_nu)
                              : 0.0);
  a_eq_ = grho_r0 / grho_m0;
}

GrhoComponents Background::grho(double a) const {
  PLINGER_REQUIRE(a > 0.0, "Background: a must be positive");
  GrhoComponents g;
  g.cdm = grho_c0_ / a;
  g.baryon = grho_b0_ / a;
  g.photon = grho_g0_ / (a * a);
  g.nu_massless = grho_nu_ml0_ / (a * a);
  if (nu_) {
    g.nu_massive = grho_nu_rel_one_ *
                   static_cast<double>(params_.n_massive_nu) / (a * a) *
                   nu_->rho_ratio(nu_xi(a));
  }
  g.lambda = grho_v0_ * a * a;
  return g;
}

double Background::gpres_of(const GrhoComponents& g, double a) const {
  double p = (g.photon + g.nu_massless) / 3.0 - g.lambda;
  if (nu_) {
    // p/rho for the massive species: (p_ratio/3) / rho_ratio relative to
    // the relativistic w = 1/3.
    const double xi = nu_xi(a);
    p += g.nu_massive / 3.0 * nu_->p_ratio(xi) / nu_->rho_ratio(xi);
  }
  return p;
}

double Background::gpres(double a) const { return gpres_of(grho(a), a); }

double Background::adotoa(double a) const {
  return std::sqrt(grho(a).total() / 3.0);
}

double Background::adotdota_over_a(double a) const {
  const GrhoComponents g = grho(a);
  return (g.total() - 3.0 * gpres_of(g, a)) / 6.0;
}

double Background::tau_of_a(double a) const {
  PLINGER_REQUIRE(a > 0.0 && a <= 1.0 + 1e-12,
                  "tau_of_a: a out of table range");
  return tau_of_lna_(std::log(a));
}

double Background::a_of_tau(double tau) const {
  return std::exp(lna_of_tau(tau));
}

double Background::lna_of_tau(double tau) const {
  PLINGER_REQUIRE(tau > 0.0, "a_of_tau: tau must be positive");
  return lna_of_tau_(tau);
}

}  // namespace plinger::cosmo
