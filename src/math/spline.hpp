#pragma once

/// Natural cubic spline interpolation on an arbitrary strictly-increasing
/// abscissa grid.  Used throughout the code for background tables (a(tau),
/// tau(a)), thermodynamic tables (opacity, visibility), and transfer-
/// function resampling — the same role the SPLINE/SPLINT pair plays in the
/// original LINGER sources.

#include <cstddef>
#include <span>
#include <vector>

namespace plinger::math {

/// Natural cubic spline through (x_i, y_i) with zero second derivative at
/// both ends.  Construction is O(n) (tridiagonal solve).  Evaluation is
/// O(1) on uniform grids (detected at construction: the hot path is one
/// multiply + floor instead of a binary search), O(log n) via binary
/// search otherwise; non-uniform callers that sweep monotonically can
/// carry a caller-held interval hint to stay O(1) too.
class CubicSpline {
 public:
  CubicSpline() = default;

  /// Build from matching x/y arrays.  x must be strictly increasing with at
  /// least 2 points.  Throws InvalidArgument otherwise.
  CubicSpline(std::span<const double> x, std::span<const double> y);

  /// Interpolated value at t.  t outside [x_front, x_back] is linearly
  /// extrapolated from the boundary cubic.
  double operator()(double t) const;

  /// Hinted evaluation: identical result to operator()(t), but the
  /// bracketing interval is first sought at `hint` and its neighbours
  /// before falling back to the full lookup.  `hint` is updated to the
  /// interval used, so monotone forward/backward sweeps cost O(1) per
  /// call.  The hint is caller-held state: a shared-const spline stays
  /// thread-safe as long as each thread carries its own hint.
  double operator()(double t, std::size_t& hint) const;

  /// First derivative of the interpolant at t.
  double derivative(double t) const;

  /// Second derivative of the interpolant at t.
  double second_derivative(double t) const;

  /// Integral of the interpolant from x_front to t (exact for the cubic).
  double integral_from_start(double t) const;

  /// Number of knots.
  std::size_t size() const { return x_.size(); }
  bool empty() const { return x_.empty(); }
  double x_front() const { return x_.front(); }
  double x_back() const { return x_.back(); }

  /// True when the knots were detected as uniformly spaced (O(1) lookup).
  bool uniform() const { return uniform_; }

  /// Index i of the interval with x_[i] <= t < x_[i+1], clamped to the
  /// boundary intervals for out-of-range t.  Uses the uniform O(1) path
  /// when available; exposed (with interval_bisect) so tests can assert
  /// the two lookups agree on every point class.
  std::size_t interval(double t) const;

  /// The same interval by plain binary search, unconditionally.
  std::size_t interval_bisect(double t) const;

  /// Per-knot second derivatives (natural spline solution) — read-only
  /// access for fused caches that repackage several splines into one
  /// interleaved table.
  std::span<const double> second_derivs() const { return y2_; }

 private:
  std::size_t interval_hinted(double t, std::size_t hint) const;
  double eval_on(std::size_t i, double t) const;

  std::vector<double> x_, y_, y2_;  ///< knots and second derivatives
  std::vector<double> cumint_;      ///< integral from x_0 to each knot
  bool uniform_ = false;            ///< uniform-spacing fast path enabled
  double inv_h_ = 0.0;              ///< 1/spacing when uniform
};

/// Convenience: sample f at the given x points and spline the result.
template <class F>
CubicSpline spline_function(F&& f, std::span<const double> x) {
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = f(x[i]);
  return CubicSpline(x, y);
}

/// n points linearly spaced over [a, b] inclusive.
std::vector<double> linspace(double a, double b, std::size_t n);

/// n points logarithmically spaced over [a, b] inclusive (a, b > 0).
std::vector<double> logspace(double a, double b, std::size_t n);

}  // namespace plinger::math
