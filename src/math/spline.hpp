#pragma once

/// Natural cubic spline interpolation on an arbitrary strictly-increasing
/// abscissa grid.  Used throughout the code for background tables (a(tau),
/// tau(a)), thermodynamic tables (opacity, visibility), and transfer-
/// function resampling — the same role the SPLINE/SPLINT pair plays in the
/// original LINGER sources.

#include <cstddef>
#include <span>
#include <vector>

namespace plinger::math {

/// Natural cubic spline through (x_i, y_i) with zero second derivative at
/// both ends.  Construction is O(n) (tridiagonal solve); evaluation is
/// O(log n) via binary search with a cached hot interval.
class CubicSpline {
 public:
  CubicSpline() = default;

  /// Build from matching x/y arrays.  x must be strictly increasing with at
  /// least 2 points.  Throws InvalidArgument otherwise.
  CubicSpline(std::span<const double> x, std::span<const double> y);

  /// Interpolated value at t.  t outside [x_front, x_back] is linearly
  /// extrapolated from the boundary cubic.
  double operator()(double t) const;

  /// First derivative of the interpolant at t.
  double derivative(double t) const;

  /// Second derivative of the interpolant at t.
  double second_derivative(double t) const;

  /// Integral of the interpolant from x_front to t (exact for the cubic).
  double integral_from_start(double t) const;

  /// Number of knots.
  std::size_t size() const { return x_.size(); }
  bool empty() const { return x_.empty(); }
  double x_front() const { return x_.front(); }
  double x_back() const { return x_.back(); }

 private:
  std::size_t interval(double t) const;

  std::vector<double> x_, y_, y2_;  ///< knots and second derivatives
  std::vector<double> cumint_;      ///< integral from x_0 to each knot
};

/// Convenience: sample f at the given x points and spline the result.
template <class F>
CubicSpline spline_function(F&& f, std::span<const double> x) {
  std::vector<double> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = f(x[i]);
  return CubicSpline(x, y);
}

/// n points linearly spaced over [a, b] inclusive.
std::vector<double> linspace(double a, double b, std::size_t n);

/// n points logarithmically spaced over [a, b] inclusive (a, b > 0).
std::vector<double> logspace(double a, double b, std::size_t n);

}  // namespace plinger::math
