#pragma once

/// Quadrature rules used by the physics layers:
///  * Gauss-Legendre  — generic smooth integrals (C_l band-power windows).
///  * Gauss-Laguerre  — the massive-neutrino momentum integrals
///                      \int_0^inf q^2 dq eps f0(q) ..., whose Fermi-Dirac
///                      weight decays like e^{-q}.
///  * Romberg         — adaptive integration to a tolerance for one-off
///                      integrals (sound horizon, sigma_R).

#include <cstddef>
#include <functional>
#include <vector>

namespace plinger::math {

/// Nodes and weights of an n-point quadrature rule.
struct QuadratureRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};

/// n-point Gauss-Legendre rule on [-1, 1].  Nodes are the roots of P_n
/// found by Newton iteration from the Tricomi estimate; exactness holds for
/// polynomials of degree <= 2n-1.
QuadratureRule gauss_legendre(std::size_t n);

/// Gauss-Legendre rule mapped to [a, b].
QuadratureRule gauss_legendre(std::size_t n, double a, double b);

/// n-point Gauss-Laguerre rule for \int_0^inf e^{-x} f(x) dx.  The returned
/// weights already include the e^{-x} factor removed, i.e.
/// sum_i w_i f(x_i) ~= \int_0^inf e^{-x} f(x) dx.
QuadratureRule gauss_laguerre(std::size_t n);

/// Apply a rule to a callable.
template <class F>
double apply(const QuadratureRule& rule, F&& f) {
  double acc = 0.0;
  for (std::size_t i = 0; i < rule.nodes.size(); ++i) {
    acc += rule.weights[i] * f(rule.nodes[i]);
  }
  return acc;
}

/// Romberg integration of f over [a, b] to relative tolerance rtol.
/// Throws NumericalFailure if the extrapolation table fails to converge
/// within max_levels refinements.
double romberg(const std::function<double(double)>& f, double a, double b,
               double rtol = 1e-10, int max_levels = 22);

/// Composite Simpson rule with n (even) intervals — used where the
/// integrand is sampled on a fixed grid anyway.
template <class F>
double simpson(F&& f, double a, double b, std::size_t n) {
  if (n % 2 == 1) ++n;
  const double h = (b - a) / static_cast<double>(n);
  double acc = f(a) + f(b);
  for (std::size_t i = 1; i < n; ++i) {
    acc += f(a + h * static_cast<double>(i)) * ((i % 2 == 1) ? 4.0 : 2.0);
  }
  return acc * h / 3.0;
}

}  // namespace plinger::math
