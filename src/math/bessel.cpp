#include "math/bessel.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace plinger::math {

namespace {

/// Taylor series for small arguments:
/// j_l(x) ~ x^l / (2l+1)!! (1 - x^2/(2(2l+3)) + ...).
double series_small_x(std::size_t l, double x) {
  double prefactor = 1.0;
  for (std::size_t j = 1; j <= l; ++j) {
    prefactor *= x / (2.0 * static_cast<double>(j) + 1.0);
  }
  const double x2 = x * x;
  const double dl = static_cast<double>(l);
  double term = 1.0;
  double sum = 1.0;
  for (int n = 1; n <= 10; ++n) {
    const double dn = static_cast<double>(n);
    term *= -0.5 * x2 / (dn * (2.0 * (dl + dn) + 1.0));
    sum += term;
    if (std::abs(term) < 1e-17 * std::abs(sum)) break;
  }
  return prefactor * sum;
}

}  // namespace

void sph_bessel_j_array(double x, std::span<double> out) {
  if (out.empty()) return;
  const std::size_t lmax = out.size() - 1;
  PLINGER_REQUIRE(x >= 0.0, "sph_bessel_j requires x >= 0");

  if (x < 1e-3) {
    for (std::size_t l = 0; l <= lmax; ++l) out[l] = series_small_x(l, x);
    return;
  }

  const double j0 = std::sin(x) / x;
  const double j1 = std::sin(x) / (x * x) - std::cos(x) / x;
  out[0] = j0;
  if (lmax == 0) return;
  out[1] = j1;
  if (lmax == 1) return;

  if (static_cast<double>(lmax) < x) {
    // Entirely in the oscillatory regime: upward recurrence is stable.
    for (std::size_t l = 2; l <= lmax; ++l) {
      out[l] = (2.0 * static_cast<double>(l) - 1.0) / x * out[l - 1] -
               out[l - 2];
    }
    return;
  }

  // Miller's algorithm: downward recurrence from well past lmax with an
  // arbitrary seed, then normalize against whichever of j0/j1 is larger
  // (they cannot both vanish).
  const std::size_t start =
      lmax + 20 +
      static_cast<std::size_t>(10.0 * std::sqrt(static_cast<double>(lmax)));
  std::vector<double> tmp(lmax + 1, 0.0);
  double jp2 = 0.0, jp1 = 1e-300;
  for (std::size_t l = start; l-- > 0;) {
    // j_l = (2l+3)/x j_{l+1} - j_{l+2}
    const double j = (2.0 * static_cast<double>(l) + 3.0) / x * jp1 - jp2;
    jp2 = jp1;
    jp1 = j;
    if (l <= lmax) tmp[l] = j;
    if (std::abs(jp1) > 1e250) {  // rescale against overflow
      jp1 *= 1e-250;
      jp2 *= 1e-250;
      for (std::size_t i = l; i <= lmax && i < tmp.size(); ++i) {
        tmp[i] *= 1e-250;
      }
    }
  }
  const double norm =
      (std::abs(j0) >= std::abs(j1)) ? j0 / tmp[0] : j1 / tmp[1];
  for (std::size_t l = 2; l <= lmax; ++l) out[l] = tmp[l] * norm;
}

double sph_bessel_j(std::size_t l, double x) {
  std::vector<double> buf(l + 1, 0.0);
  sph_bessel_j_array(x, buf);
  return buf[l];
}

}  // namespace plinger::math
