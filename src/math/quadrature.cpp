#include "math/quadrature.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace plinger::math {

QuadratureRule gauss_legendre(std::size_t n) {
  PLINGER_REQUIRE(n >= 1, "gauss_legendre needs n >= 1");
  QuadratureRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  const std::size_t m = (n + 1) / 2;
  for (std::size_t i = 0; i < m; ++i) {
    // Tricomi initial estimate for the i-th root of P_n.
    double x = std::cos(std::numbers::pi *
                        (static_cast<double>(i) + 0.75) /
                        (static_cast<double>(n) + 0.5));
    double dp = 0.0;
    for (int iter = 0; iter < 100; ++iter) {
      // Evaluate P_n(x) and P_n'(x) by the three-term recurrence.
      double p0 = 1.0, p1 = x;
      for (std::size_t l = 2; l <= n; ++l) {
        const double dl = static_cast<double>(l);
        const double p2 = ((2.0 * dl - 1.0) * x * p1 - (dl - 1.0) * p0) / dl;
        p0 = p1;
        p1 = p2;
      }
      dp = static_cast<double>(n) * (x * p1 - p0) / (x * x - 1.0);
      const double dx = p1 / dp;
      x -= dx;
      if (std::abs(dx) < 1e-15) break;
    }
    rule.nodes[i] = -x;
    rule.nodes[n - 1 - i] = x;
    const double w = 2.0 / ((1.0 - x * x) * dp * dp);
    rule.weights[i] = w;
    rule.weights[n - 1 - i] = w;
  }
  if (n % 2 == 1) rule.nodes[n / 2] = 0.0;
  return rule;
}

QuadratureRule gauss_legendre(std::size_t n, double a, double b) {
  QuadratureRule rule = gauss_legendre(n);
  const double mid = 0.5 * (a + b), half = 0.5 * (b - a);
  for (std::size_t i = 0; i < n; ++i) {
    rule.nodes[i] = mid + half * rule.nodes[i];
    rule.weights[i] *= half;
  }
  return rule;
}

QuadratureRule gauss_laguerre(std::size_t n) {
  PLINGER_REQUIRE(n >= 1, "gauss_laguerre needs n >= 1");
  QuadratureRule rule;
  rule.nodes.resize(n);
  rule.weights.resize(n);
  double x = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Stroud & Secrest initial estimates for Laguerre roots.
    if (i == 0) {
      x = 3.0 / (1.0 + 2.4 * static_cast<double>(n));
    } else if (i == 1) {
      x += 15.0 / (1.0 + 2.5 * static_cast<double>(n));
    } else {
      const double ai = static_cast<double>(i - 1);
      x += (1.0 + 2.55 * ai) / (1.9 * ai) * (x - rule.nodes[i - 2]);
    }
    double dp = 0.0, p1 = 0.0;
    for (int iter = 0; iter < 200; ++iter) {
      // Laguerre recurrence: (l+1) L_{l+1} = (2l+1-x) L_l - l L_{l-1}.
      double p0 = 1.0;
      p1 = 1.0 - x;
      for (std::size_t l = 2; l <= n; ++l) {
        const double dl = static_cast<double>(l);
        const double p2 =
            ((2.0 * dl - 1.0 - x) * p1 - (dl - 1.0) * p0) / dl;
        p0 = p1;
        p1 = p2;
      }
      dp = static_cast<double>(n) * (p1 - p0) / x;
      const double dx = p1 / dp;
      x -= dx;
      if (std::abs(dx) < 1e-14 * std::max(1.0, x)) break;
    }
    rule.nodes[i] = x;
    // w_i = x_i / ((n+1)^2 [L_{n+1}(x_i)]^2); use dp relation instead:
    // w_i = 1 / (x_i * dp^2) * ... standard form below.
    rule.weights[i] = 1.0 / (x * dp * dp);
  }
  return rule;
}

double romberg(const std::function<double(double)>& f, double a, double b,
               double rtol, int max_levels) {
  PLINGER_REQUIRE(max_levels >= 2 && max_levels <= 30,
                  "romberg max_levels out of range");
  std::vector<double> row(static_cast<std::size_t>(max_levels), 0.0);
  double h = b - a;
  row[0] = 0.5 * h * (f(a) + f(b));
  std::size_t n_pts = 1;
  for (int level = 1; level < max_levels; ++level) {
    // Refine trapezoid.
    h *= 0.5;
    double sum = 0.0;
    for (std::size_t i = 0; i < n_pts; ++i) {
      sum += f(a + h * (2.0 * static_cast<double>(i) + 1.0));
    }
    double prev_diag = row[0];
    row[0] = 0.5 * prev_diag + h * sum;
    n_pts *= 2;
    // Richardson extrapolation along the row.
    double factor = 4.0;
    for (int j = 1; j <= level; ++j) {
      const double tmp = row[static_cast<std::size_t>(j)];
      row[static_cast<std::size_t>(j)] =
          (factor * row[static_cast<std::size_t>(j - 1)] - prev_diag) /
          (factor - 1.0);
      prev_diag = tmp;
      factor *= 4.0;
    }
    const double best = row[static_cast<std::size_t>(level)];
    const double prev = row[static_cast<std::size_t>(level - 1)];
    if (level >= 4 &&
        std::abs(best - prev) <= rtol * std::max(1e-300, std::abs(best))) {
      return best;
    }
  }
  throw NumericalFailure("romberg failed to converge");
}

}  // namespace plinger::math
