#pragma once

/// Brent's method for one-dimensional root finding.  Used to invert
/// monotonic relations such as tau(a), z of recombination, and the COBE
/// normalization solve.

#include <functional>

namespace plinger::math {

/// Find x in [a, b] with f(x) = 0, assuming f(a) and f(b) bracket a root.
/// Converges to |interval| <= xtol + 4 eps |x|.  Throws InvalidArgument if
/// the bracket is invalid and NumericalFailure on non-convergence.
double brent_root(const std::function<double(double)>& f, double a, double b,
                  double xtol = 1e-12, int max_iter = 200);

}  // namespace plinger::math
