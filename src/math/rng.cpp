#include "math/rng.hpp"

#include <cmath>
#include <numbers>

namespace plinger::math {

namespace {
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Xoshiro256::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Xoshiro256::gaussian() {
  if (have_cached_) {
    have_cached_ = false;
    return cached_;
  }
  // Box-Muller; reject u1 == 0 to keep log finite.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double phi = 2.0 * std::numbers::pi * u2;
  cached_ = r * std::sin(phi);
  have_cached_ = true;
  return r * std::cos(phi);
}

void Xoshiro256::discard(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) next_u64();
}

}  // namespace plinger::math
