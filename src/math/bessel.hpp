#pragma once

/// Spherical Bessel functions j_l(x).
///
/// Used for the free-streaming closure tests of the Boltzmann hierarchy
/// (the truncation scheme approximates F_l ~ j_l(k tau)) and by the
/// validation suite.  The implementation uses the standard stable
/// strategy: upward recurrence for l < x, Miller's downward recurrence
/// normalized against j_0 for l >= x, and the Taylor series near x = 0.

#include <cstddef>
#include <span>

namespace plinger::math {

/// j_l(x) for a single l (l >= 0, x >= 0).
double sph_bessel_j(std::size_t l, double x);

/// Fill out[l] = j_l(x) for l = 0..out.size()-1.
void sph_bessel_j_array(double x, std::span<double> out);

}  // namespace plinger::math
