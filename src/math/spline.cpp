#include "math/spline.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace plinger::math {

CubicSpline::CubicSpline(std::span<const double> x, std::span<const double> y)
    : x_(x.begin(), x.end()), y_(y.begin(), y.end()) {
  PLINGER_REQUIRE(x.size() == y.size(), "spline x/y size mismatch");
  PLINGER_REQUIRE(x.size() >= 2, "spline needs at least 2 points");
  for (std::size_t i = 1; i < x_.size(); ++i) {
    PLINGER_REQUIRE(x_[i] > x_[i - 1], "spline x must be strictly increasing");
  }

  const std::size_t n = x_.size();
  y2_.assign(n, 0.0);
  std::vector<double> u(n, 0.0);
  // Tridiagonal sweep for natural boundary conditions (y2 = 0 at both ends).
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const double sig = (x_[i] - x_[i - 1]) / (x_[i + 1] - x_[i - 1]);
    const double p = sig * y2_[i - 1] + 2.0;
    y2_[i] = (sig - 1.0) / p;
    const double dy1 = (y_[i + 1] - y_[i]) / (x_[i + 1] - x_[i]);
    const double dy0 = (y_[i] - y_[i - 1]) / (x_[i] - x_[i - 1]);
    u[i] = (6.0 * (dy1 - dy0) / (x_[i + 1] - x_[i - 1]) - sig * u[i - 1]) / p;
  }
  for (std::size_t i = n - 1; i-- > 1;) {
    y2_[i] = y2_[i] * y2_[i + 1] + u[i];
  }

  // Precompute cumulative integrals for integral_from_start().
  cumint_.assign(n, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const double h = x_[i + 1] - x_[i];
    cumint_[i + 1] = cumint_[i] + 0.5 * h * (y_[i] + y_[i + 1]) -
                     h * h * h / 24.0 * (y2_[i] + y2_[i + 1]);
  }

  // Uniform-grid detection for the O(1) index fast path.  The tolerance
  // admits linspace-style rounding jitter; interval() corrects any
  // off-by-one from that jitter against the actual knots, so the fast
  // path stays exactly equivalent to the binary search.
  const double h = (x_.back() - x_.front()) / static_cast<double>(n - 1);
  bool uniform = h > 0.0;
  for (std::size_t i = 1; uniform && i + 1 < n; ++i) {
    const double ideal = x_.front() + h * static_cast<double>(i);
    if (std::abs(x_[i] - ideal) > 1e-6 * h) uniform = false;
  }
  uniform_ = uniform;
  inv_h_ = uniform_ ? 1.0 / h : 0.0;
}

std::size_t CubicSpline::interval_bisect(double t) const {
  // Binary search for i with x_[i] <= t < x_[i+1]; clamp to end intervals
  // so out-of-range t extrapolates from the boundary cubic.
  const auto it = std::upper_bound(x_.begin(), x_.end(), t);
  std::size_t i = static_cast<std::size_t>(it - x_.begin());
  if (i == 0) return 0;
  if (i >= x_.size()) return x_.size() - 2;
  return i - 1;
}

std::size_t CubicSpline::interval(double t) const {
  if (!uniform_) return interval_bisect(t);
  const std::size_t n = x_.size();
  const double u = (t - x_.front()) * inv_h_;
  std::size_t i = 0;
  if (u > 0.0) {
    i = static_cast<std::size_t>(u);
    if (i > n - 2) i = n - 2;
  }
  // One-knot fixup against the stored abscissae makes the arithmetic
  // index agree with upper_bound bit-for-bit, including exact knot hits.
  while (i + 2 < n && x_[i + 1] <= t) ++i;
  while (i > 0 && x_[i] > t) --i;
  return i;
}

std::size_t CubicSpline::interval_hinted(double t, std::size_t hint) const {
  const std::size_t n = x_.size();
  const std::size_t i = std::min(hint, n - 2);
  if (x_[i] <= t) {
    if (t < x_[i + 1] || i == n - 2) return i;  // hit (or top extrapolation)
    if (t < x_[i + 2]) return i + 1;            // forward sweep: next interval
  } else {
    if (i == 0) return 0;                 // below the table: boundary cubic
    if (x_[i - 1] <= t) return i - 1;     // backward sweep: previous interval
  }
  return interval(t);
}

double CubicSpline::eval_on(std::size_t i, double t) const {
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - t) / h;
  const double b = (t - x_[i]) / h;
  return a * y_[i] + b * y_[i + 1] +
         ((a * a * a - a) * y2_[i] + (b * b * b - b) * y2_[i + 1]) *
             (h * h) / 6.0;
}

double CubicSpline::operator()(double t) const {
  return eval_on(interval(t), t);
}

double CubicSpline::operator()(double t, std::size_t& hint) const {
  const std::size_t i = interval_hinted(t, hint);
  hint = i;
  return eval_on(i, t);
}

double CubicSpline::derivative(double t) const {
  const std::size_t i = interval(t);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - t) / h;
  const double b = (t - x_[i]) / h;
  return (y_[i + 1] - y_[i]) / h +
         ((3.0 * b * b - 1.0) * y2_[i + 1] - (3.0 * a * a - 1.0) * y2_[i]) *
             h / 6.0;
}

double CubicSpline::second_derivative(double t) const {
  const std::size_t i = interval(t);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - t) / h;
  const double b = (t - x_[i]) / h;
  return a * y2_[i] + b * y2_[i + 1];
}

double CubicSpline::integral_from_start(double t) const {
  const std::size_t i = interval(t);
  const double h = x_[i + 1] - x_[i];
  const double a = (x_[i + 1] - t) / h;
  const double b = (t - x_[i]) / h;
  // Integral of the local cubic from x_[i] to t.
  const double part =
      h * (0.5 * (1.0 - a * a) * y_[i] + 0.5 * b * b * y_[i + 1] +
           h * h / 24.0 *
               ((-(a * a * a * a) + 2.0 * a * a - 1.0) * y2_[i] +
                (b * b * b * b - 2.0 * b * b) * y2_[i + 1]));
  return cumint_[i] + part;
}

std::vector<double> linspace(double a, double b, std::size_t n) {
  PLINGER_REQUIRE(n >= 2, "linspace needs n >= 2");
  std::vector<double> v(n);
  const double step = (b - a) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) v[i] = a + step * static_cast<double>(i);
  v.back() = b;
  return v;
}

std::vector<double> logspace(double a, double b, std::size_t n) {
  PLINGER_REQUIRE(a > 0.0 && b > 0.0, "logspace endpoints must be positive");
  auto v = linspace(std::log(a), std::log(b), n);
  for (auto& t : v) t = std::exp(t);
  v.front() = a;
  v.back() = b;
  return v;
}

}  // namespace plinger::math
