#include "math/legendre.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace plinger::math {

void legendre_p_array(double x, std::span<double> out) {
  if (out.empty()) return;
  out[0] = 1.0;
  if (out.size() == 1) return;
  out[1] = x;
  for (std::size_t l = 2; l < out.size(); ++l) {
    const double dl = static_cast<double>(l);
    out[l] = ((2.0 * dl - 1.0) * x * out[l - 1] - (dl - 1.0) * out[l - 2]) / dl;
  }
}

double legendre_p(std::size_t l, double x) {
  double p0 = 1.0;
  if (l == 0) return p0;
  double p1 = x;
  for (std::size_t j = 2; j <= l; ++j) {
    const double dj = static_cast<double>(j);
    const double p2 = ((2.0 * dj - 1.0) * x * p1 - (dj - 1.0) * p0) / dj;
    p0 = p1;
    p1 = p2;
  }
  return p1;
}

AssociatedLegendre::AssociatedLegendre(std::size_t lmax) : lmax_(lmax) {}

void AssociatedLegendre::lambda_lm(std::size_t m, double x,
                                   std::span<double> out) const {
  PLINGER_REQUIRE(m <= lmax_, "AssociatedLegendre: m exceeds lmax");
  PLINGER_REQUIRE(out.size() >= lmax_ - m + 1,
                  "AssociatedLegendre: output span too small");
  const double sin2 = std::max(0.0, 1.0 - x * x);

  // Seed: lambda_mm = (-1)^m sqrt((2m+1)/(4 pi)) sqrt((2m-1)!!/(2m)!!) sin^m.
  // Built in log space against underflow for large m near the poles.
  double lam_mm;
  if (m == 0) {
    lam_mm = 1.0 / std::sqrt(4.0 * std::numbers::pi);
  } else {
    double log_dfact_ratio = 0.0;  // log((2m-1)!! / (2m)!!)
    for (std::size_t j = 1; j <= m; ++j) {
      log_dfact_ratio += std::log((2.0 * static_cast<double>(j) - 1.0) /
                                  (2.0 * static_cast<double>(j)));
    }
    const double log_sin_m =
        0.5 * static_cast<double>(m) * std::log(std::max(sin2, 1e-300));
    const double log_lam =
        0.5 * std::log((2.0 * static_cast<double>(m) + 1.0) /
                       (4.0 * std::numbers::pi)) +
        0.5 * log_dfact_ratio + log_sin_m;
    lam_mm = ((m % 2 == 0) ? 1.0 : -1.0) * std::exp(log_lam);
  }

  out[0] = lam_mm;
  if (m == lmax_) return;
  // lambda_{m+1,m} = x sqrt(2m+3) lambda_mm.
  out[1] = x * std::sqrt(2.0 * static_cast<double>(m) + 3.0) * lam_mm;
  const double dm = static_cast<double>(m);
  for (std::size_t l = m + 2; l <= lmax_; ++l) {
    const double dl = static_cast<double>(l);
    const double num = (2.0 * dl + 1.0) / ((dl - dm) * (dl + dm));
    const double a = std::sqrt(num * (2.0 * dl - 1.0));
    const double b = -std::sqrt(num * ((dl - 1.0 - dm) * (dl - 1.0 + dm)) /
                                (2.0 * dl - 3.0));
    out[l - m] = a * x * out[l - m - 1] + b * out[l - m - 2];
  }
}

}  // namespace plinger::math
