#pragma once

/// Legendre polynomials and spherical-harmonic-normalized associated
/// Legendre functions.
///
/// P_l(x) underlies the angular moment expansion of the photon and
/// neutrino distribution functions (the Boltzmann hierarchy); the
/// normalized P_lm underlie the sky-map synthesis (Figure 3).

#include <cstddef>
#include <span>
#include <vector>

namespace plinger::math {

/// Fill out[l] = P_l(x) for l = 0..out.size()-1 by the three-term
/// recurrence (stable for |x| <= 1).
void legendre_p_array(double x, std::span<double> out);

/// P_l(x) for a single l.
double legendre_p(std::size_t l, double x);

/// Spherical-harmonic normalized associated Legendre function
///   lambda_lm(x) = sqrt((2l+1)/(4 pi) (l-m)!/(l+m)!) P_lm(x),
/// so that Y_lm(theta, phi) = lambda_lm(cos theta) e^{i m phi}.
///
/// Computed by the standard m-diagonal seed plus upward-in-l recurrence,
/// which is numerically stable; the seed includes the normalization so no
/// factorial overflow occurs even for l ~ several thousand.
class AssociatedLegendre {
 public:
  /// Functions are generated for l <= lmax.
  explicit AssociatedLegendre(std::size_t lmax);

  /// Fill out[l - m] = lambda_lm(x) for l = m..lmax.
  /// out.size() must be >= lmax - m + 1.
  void lambda_lm(std::size_t m, double x, std::span<double> out) const;

  std::size_t lmax() const { return lmax_; }

 private:
  std::size_t lmax_;
};

}  // namespace plinger::math
