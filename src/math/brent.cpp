#include "math/brent.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace plinger::math {

double brent_root(const std::function<double(double)>& f, double a, double b,
                  double xtol, int max_iter) {
  double fa = f(a), fb = f(b);
  PLINGER_REQUIRE(fa * fb <= 0.0, "brent_root: interval does not bracket");
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;

  double c = a, fc = fa;
  double d = b - a, e = d;
  for (int iter = 0; iter < max_iter; ++iter) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol =
        2.0 * std::numeric_limits<double>::epsilon() * std::abs(b) +
        0.5 * xtol;
    const double m = 0.5 * (c - b);
    if (std::abs(m) <= tol || fb == 0.0) return b;

    if (std::abs(e) >= tol && std::abs(fa) > std::abs(fb)) {
      // Inverse quadratic / secant interpolation.
      const double s = fb / fa;
      double p, q;
      if (a == c) {
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        const double qq = fa / fc, r = fb / fc;
        p = s * (2.0 * m * qq * (qq - r) - (b - a) * (r - 1.0));
        q = (qq - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q;
      p = std::abs(p);
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q),
                             std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    } else {
      d = m;
      e = m;
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0.0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      d = b - a;
      e = d;
    }
  }
  throw NumericalFailure("brent_root failed to converge");
}

}  // namespace plinger::math
