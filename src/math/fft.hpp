#pragma once

/// Minimal radix-2 complex FFT, sufficient for the Gaussian-random-field
/// synthesis used by the potential-evolution movie (the paper's MPEG
/// figure) and the sky-map example.  Sizes must be powers of two.

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace plinger::math {

/// In-place iterative Cooley-Tukey FFT.  sign = -1 gives the forward
/// transform sum x_n e^{-2 pi i n k / N}; sign = +1 the unnormalized
/// inverse (divide by N to invert).
void fft(std::span<std::complex<double>> data, int sign);

/// In-place 2-D FFT of an n x n row-major grid (n power of two).
void fft2d(std::span<std::complex<double>> data, std::size_t n, int sign);

/// In-place 3-D FFT of an n x n x n row-major grid (n power of two),
/// index (ix, iy, iz) -> (ix * n + iy) * n + iz.
void fft3d(std::span<std::complex<double>> data, std::size_t n, int sign);

/// True if n is a power of two (and > 0).
bool is_pow2(std::size_t n);

}  // namespace plinger::math
