#pragma once

/// Deterministic random number generation for sky-map and random-field
/// realizations.  We implement xoshiro256++ with splitmix64 seeding and a
/// Box-Muller Gaussian so that realizations are bit-identical across
/// platforms and standard-library versions (std::normal_distribution is
/// implementation-defined).

#include <cstdint>

namespace plinger::math {

/// xoshiro256++ (Blackman & Vigna 2019); period 2^256 - 1.
class Xoshiro256 {
 public:
  /// Seed via splitmix64 expansion of a single 64-bit seed.
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Standard normal deviate (Box-Muller, with one cached value).
  double gaussian();

  /// Long-jump equivalent: discard n draws (used to decorrelate streams).
  void discard(std::uint64_t n);

 private:
  std::uint64_t s_[4];
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace plinger::math
