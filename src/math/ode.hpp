#pragma once

/// Adaptive embedded Runge-Kutta integrators.
///
/// The paper integrates the Einstein-Boltzmann system with DVERK, Hull,
/// Enright & Jackson's implementation of Verner's 8-stage 6(5) pair
/// (obtained from netlib).  We reproduce that pair exactly
/// (VernerDverkTableau) and also provide the Cash-Karp 4(5) pair as a
/// comparison baseline for the integrator ablation bench.
///
/// The driver is a standard step-doubling-free embedded-pair controller:
/// each step computes a high-order solution and an embedded lower-order
/// error estimate; steps are accepted when the weighted RMS error is <= 1
/// and the step size is rescaled by err^(-1/order) with a safety factor.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace plinger::math {

/// Controls for adaptive ODE integration.
struct OdeOptions {
  double rtol = 1e-6;      ///< relative tolerance per component
  double atol = 1e-12;     ///< absolute tolerance per component
  double h_init = 0.0;     ///< initial step; 0 selects (t1-t0)/100
  double h_min = 0.0;      ///< minimum |step|; 0 selects ~16*eps*|t|
  double h_max = 0.0;      ///< maximum |step|; 0 means unlimited
  long max_steps = 2'000'000;  ///< hard cap on accepted+rejected steps
};

/// Counters accumulated over one integrate() call.
struct OdeStats {
  long n_accepted = 0;  ///< accepted steps
  long n_rejected = 0;  ///< rejected (error too large) steps
  long n_rhs = 0;       ///< right-hand-side evaluations
};

/// Verner's 6(5) pair as used in DVERK (Hull, Enright & Jackson 1976).
/// 8 stages; the 6th-order weights propagate the solution, the embedded
/// 5th-order weights provide the error estimate.
struct VernerDverkTableau {
  static constexpr int stages = 8;
  static constexpr int order = 6;  ///< order of the propagated solution
  static constexpr double c[stages] = {0.0,       1.0 / 6.0, 4.0 / 15.0,
                                       2.0 / 3.0, 5.0 / 6.0, 1.0,
                                       1.0 / 15.0, 1.0};
  static constexpr double a[stages][stages] = {
      {},
      {1.0 / 6.0},
      {4.0 / 75.0, 16.0 / 75.0},
      {5.0 / 6.0, -8.0 / 3.0, 5.0 / 2.0},
      {-165.0 / 64.0, 55.0 / 6.0, -425.0 / 64.0, 85.0 / 96.0},
      {12.0 / 5.0, -8.0, 4015.0 / 612.0, -11.0 / 36.0, 88.0 / 255.0},
      {-8263.0 / 15000.0, 124.0 / 75.0, -643.0 / 680.0, -81.0 / 250.0,
       2484.0 / 10625.0, 0.0},
      {3501.0 / 1720.0, -300.0 / 43.0, 297275.0 / 52632.0, -319.0 / 2322.0,
       24068.0 / 84065.0, 0.0, 3850.0 / 26703.0},
  };
  /// 6th-order solution weights.
  static constexpr double b[stages] = {3.0 / 40.0,    0.0,
                                       875.0 / 2244.0, 23.0 / 72.0,
                                       264.0 / 1955.0, 0.0,
                                       125.0 / 11592.0, 43.0 / 616.0};
  /// Embedded 5th-order weights.
  static constexpr double bhat[stages] = {13.0 / 160.0,   0.0,
                                          2375.0 / 5984.0, 5.0 / 16.0,
                                          12.0 / 85.0,     3.0 / 44.0,
                                          0.0,             0.0};
};

/// Cash-Karp 4(5) pair (Cash & Karp 1990): the classic RKF-style baseline
/// used in the integrator ablation bench.
struct CashKarpTableau {
  static constexpr int stages = 6;
  static constexpr int order = 5;
  static constexpr double c[stages] = {0.0,       1.0 / 5.0, 3.0 / 10.0,
                                       3.0 / 5.0, 1.0,       7.0 / 8.0};
  static constexpr double a[stages][stages] = {
      {},
      {1.0 / 5.0},
      {3.0 / 40.0, 9.0 / 40.0},
      {3.0 / 10.0, -9.0 / 10.0, 6.0 / 5.0},
      {-11.0 / 54.0, 5.0 / 2.0, -70.0 / 27.0, 35.0 / 27.0},
      {1631.0 / 55296.0, 175.0 / 512.0, 575.0 / 13824.0, 44275.0 / 110592.0,
       253.0 / 4096.0},
  };
  /// 5th-order solution weights.
  static constexpr double b[stages] = {37.0 / 378.0,  0.0, 250.0 / 621.0,
                                       125.0 / 594.0, 0.0, 512.0 / 1771.0};
  /// Embedded 4th-order weights.
  static constexpr double bhat[stages] = {
      2825.0 / 27648.0, 0.0,           18575.0 / 48384.0,
      13525.0 / 55296.0, 277.0 / 14336.0, 1.0 / 4.0};
};

/// Generic embedded Runge-Kutta driver parameterized on a Butcher tableau.
///
/// The right-hand side is any callable f(t, y, dydt) taking
/// (double, std::span<const double>, std::span<double>).  Workspace is
/// reused across calls, so one integrator instance per mode avoids
/// per-step allocation.
template <class Tableau>
class EmbeddedRk {
 public:
  EmbeddedRk() = default;

  /// Integrate y from t0 to t1 in place.  Throws NumericalFailure if the
  /// step size underflows or max_steps is exhausted.  The optional observer
  /// is called as observer(t, y) after every accepted step (and once at t0).
  template <class F, class Observer>
  OdeStats integrate(F&& f, double t0, double t1, std::vector<double>& y,
                     const OdeOptions& opts, Observer&& observer) {
    PLINGER_REQUIRE(t1 != t0, "integration interval is empty");
    PLINGER_REQUIRE(opts.rtol > 0.0 && opts.atol >= 0.0,
                    "tolerances must be positive");
    const std::size_t n = y.size();
    resize_workspace(n);
    rtol_ = opts.rtol;
    atol_ = opts.atol;

    const double dir = (t1 > t0) ? 1.0 : -1.0;
    double t = t0;
    double h = opts.h_init != 0.0 ? std::abs(opts.h_init)
                                  : std::abs(t1 - t0) / 100.0;
    if (opts.h_max > 0.0) h = std::min(h, opts.h_max);

    OdeStats stats;
    observer(t, std::span<const double>(y));

    while (dir * (t1 - t) > 0.0) {
      const double h_floor =
          opts.h_min > 0.0
              ? opts.h_min
              : 16.0 * std::numeric_limits<double>::epsilon() *
                    std::max(std::abs(t), std::abs(t1));
      h = std::min(h, std::abs(t1 - t));
      if (h < h_floor) {
        throw NumericalFailure("ODE step size underflow at t=" +
                               std::to_string(t));
      }
      if (stats.n_accepted + stats.n_rejected >= opts.max_steps) {
        throw NumericalFailure("ODE max_steps exceeded at t=" +
                               std::to_string(t));
      }

      const double err = attempt_step(f, t, dir * h, y, stats);
      if (err <= 1.0) {
        t += dir * h;
        y.swap(y_new_);
        observer(t, std::span<const double>(y));
        ++stats.n_accepted;
        h *= step_growth(err);
      } else {
        ++stats.n_rejected;
        h *= step_shrink(err);
      }
      if (opts.h_max > 0.0) h = std::min(h, opts.h_max);
    }
    return stats;
  }

  /// Overload without an observer.
  template <class F>
  OdeStats integrate(F&& f, double t0, double t1, std::vector<double>& y,
                     const OdeOptions& opts) {
    return integrate(std::forward<F>(f), t0, t1, y, opts,
                     [](double, std::span<const double>) {});
  }

 private:
  void resize_workspace(std::size_t n) {
    if (y_new_.size() != n) {
      y_new_.assign(n, 0.0);
      y_tmp_.assign(n, 0.0);
      d_.assign(n, 0.0);
      for (auto& k : k_) k.assign(n, 0.0);
    }
  }

  /// One trial step of size h (signed).  Fills y_new_ with the high-order
  /// solution and returns the weighted RMS error of the embedded estimate.
  ///
  /// All stage combinations run stage-major (axpy form): each inner loop
  /// streams one contiguous k_[m] row with a single scalar coefficient,
  /// which vectorizes cleanly, and stages with a zero tableau entry are
  /// skipped outright instead of multiplying by 0 per component.
  template <class F>
  double attempt_step(F&& f, double t, double h, const std::vector<double>& y,
                      OdeStats& stats) {
    constexpr int s = Tableau::stages;
    const std::size_t n = y.size();
    const double* yp = y.data();

    f(t, std::span<const double>(y), std::span<double>(k_[0]));
    for (int i = 1; i < s; ++i) {
      double* yt = y_tmp_.data();
      {
        const double a0 = h * Tableau::a[i][0];
        const double* k0 = k_[0].data();
        for (std::size_t j = 0; j < n; ++j) yt[j] = yp[j] + a0 * k0[j];
      }
      for (int m = 1; m < i; ++m) {
        if (Tableau::a[i][m] == 0.0) continue;
        const double am = h * Tableau::a[i][m];
        const double* km = k_[m].data();
        for (std::size_t j = 0; j < n; ++j) yt[j] += am * km[j];
      }
      f(t + Tableau::c[i] * h, std::span<const double>(y_tmp_),
        std::span<double>(k_[i]));
    }
    stats.n_rhs += s;

    // High-order solution y_new = y + h sum b[m] k[m].
    {
      double* yn = y_new_.data();
      const double b0 = h * Tableau::b[0];
      const double* k0 = k_[0].data();
      for (std::size_t j = 0; j < n; ++j) yn[j] = yp[j] + b0 * k0[j];
      for (int m = 1; m < s; ++m) {
        if (Tableau::b[m] == 0.0) continue;
        const double bm = h * Tableau::b[m];
        const double* km = k_[m].data();
        for (std::size_t j = 0; j < n; ++j) yn[j] += bm * km[j];
      }
    }

    // Embedded error vector d = h sum (b[m]-bhat[m]) k[m].
    {
      double* dp = d_.data();
      const double d0 = h * (Tableau::b[0] - Tableau::bhat[0]);
      const double* k0 = k_[0].data();
      for (std::size_t j = 0; j < n; ++j) dp[j] = d0 * k0[j];
      for (int m = 1; m < s; ++m) {
        if (Tableau::b[m] - Tableau::bhat[m] == 0.0) continue;
        const double dm = h * (Tableau::b[m] - Tableau::bhat[m]);
        const double* km = k_[m].data();
        for (std::size_t j = 0; j < n; ++j) dp[j] += dm * km[j];
      }
    }

    double err_sq = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double scale =
          atol_ + rtol_ * std::max(std::abs(yp[j]), std::abs(y_new_[j]));
      const double e = d_[j] / scale;
      err_sq += e * e;
    }
    return std::sqrt(err_sq / static_cast<double>(n));
  }

  static double step_growth(double err) {
    constexpr double safety = 0.9, max_growth = 5.0;
    if (err <= 0.0) return max_growth;
    return std::min(max_growth,
                    safety * std::pow(err, -1.0 / Tableau::order));
  }
  static double step_shrink(double err) {
    constexpr double safety = 0.9, min_shrink = 0.1;
    return std::max(min_shrink,
                    safety * std::pow(err, -1.0 / Tableau::order));
  }

  double rtol_ = 1e-6;   ///< copied from OdeOptions at integrate() entry
  double atol_ = 1e-12;  ///< copied from OdeOptions at integrate() entry
  std::vector<double> y_new_, y_tmp_, d_;
  std::vector<double> k_[Tableau::stages];
};

/// The paper's integrator: Verner 6(5) as in netlib DVERK.
using Dverk = EmbeddedRk<VernerDverkTableau>;
/// Comparison baseline for bench_integrator.
using CashKarp = EmbeddedRk<CashKarpTableau>;

}  // namespace plinger::math
