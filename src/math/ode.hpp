#pragma once

/// Adaptive embedded Runge-Kutta integrators.
///
/// The paper integrates the Einstein-Boltzmann system with DVERK, Hull,
/// Enright & Jackson's implementation of Verner's 8-stage 6(5) pair
/// (obtained from netlib).  We reproduce that pair exactly
/// (VernerDverkTableau) and also provide the Cash-Karp 4(5) pair as a
/// comparison baseline for the integrator ablation bench.
///
/// The driver is a standard step-doubling-free embedded-pair controller:
/// each step computes a high-order solution and an embedded lower-order
/// error estimate; steps are accepted when the weighted RMS error is <= 1
/// and the step size is rescaled by err^(-1/order) with a safety factor.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace plinger::math {

/// Controls for adaptive ODE integration.
struct OdeOptions {
  double rtol = 1e-6;      ///< relative tolerance per component
  double atol = 1e-12;     ///< absolute tolerance per component
  double h_init = 0.0;     ///< initial step; 0 selects (t1-t0)/100
  double h_min = 0.0;      ///< minimum |step|; 0 selects ~16*eps*|t|
  double h_max = 0.0;      ///< maximum |step|; 0 means unlimited
  long max_steps = 2'000'000;  ///< hard cap on accepted+rejected steps
};

/// Counters accumulated over one integrate() call.
struct OdeStats {
  long n_accepted = 0;  ///< accepted steps
  long n_rejected = 0;  ///< rejected (error too large) steps
  long n_rhs = 0;       ///< right-hand-side evaluations
};

/// Verner's 6(5) pair as used in DVERK (Hull, Enright & Jackson 1976).
/// 8 stages; the 6th-order weights propagate the solution, the embedded
/// 5th-order weights provide the error estimate.
struct VernerDverkTableau {
  static constexpr int stages = 8;
  static constexpr int order = 6;  ///< order of the propagated solution
  static constexpr double c[stages] = {0.0,       1.0 / 6.0, 4.0 / 15.0,
                                       2.0 / 3.0, 5.0 / 6.0, 1.0,
                                       1.0 / 15.0, 1.0};
  static constexpr double a[stages][stages] = {
      {},
      {1.0 / 6.0},
      {4.0 / 75.0, 16.0 / 75.0},
      {5.0 / 6.0, -8.0 / 3.0, 5.0 / 2.0},
      {-165.0 / 64.0, 55.0 / 6.0, -425.0 / 64.0, 85.0 / 96.0},
      {12.0 / 5.0, -8.0, 4015.0 / 612.0, -11.0 / 36.0, 88.0 / 255.0},
      {-8263.0 / 15000.0, 124.0 / 75.0, -643.0 / 680.0, -81.0 / 250.0,
       2484.0 / 10625.0, 0.0},
      {3501.0 / 1720.0, -300.0 / 43.0, 297275.0 / 52632.0, -319.0 / 2322.0,
       24068.0 / 84065.0, 0.0, 3850.0 / 26703.0},
  };
  /// 6th-order solution weights.
  static constexpr double b[stages] = {3.0 / 40.0,    0.0,
                                       875.0 / 2244.0, 23.0 / 72.0,
                                       264.0 / 1955.0, 0.0,
                                       125.0 / 11592.0, 43.0 / 616.0};
  /// Embedded 5th-order weights.
  static constexpr double bhat[stages] = {13.0 / 160.0,   0.0,
                                          2375.0 / 5984.0, 5.0 / 16.0,
                                          12.0 / 85.0,     3.0 / 44.0,
                                          0.0,             0.0};
};

/// Cash-Karp 4(5) pair (Cash & Karp 1990): the classic RKF-style baseline
/// used in the integrator ablation bench.
struct CashKarpTableau {
  static constexpr int stages = 6;
  static constexpr int order = 5;
  static constexpr double c[stages] = {0.0,       1.0 / 5.0, 3.0 / 10.0,
                                       3.0 / 5.0, 1.0,       7.0 / 8.0};
  static constexpr double a[stages][stages] = {
      {},
      {1.0 / 5.0},
      {3.0 / 40.0, 9.0 / 40.0},
      {3.0 / 10.0, -9.0 / 10.0, 6.0 / 5.0},
      {-11.0 / 54.0, 5.0 / 2.0, -70.0 / 27.0, 35.0 / 27.0},
      {1631.0 / 55296.0, 175.0 / 512.0, 575.0 / 13824.0, 44275.0 / 110592.0,
       253.0 / 4096.0},
  };
  /// 5th-order solution weights.
  static constexpr double b[stages] = {37.0 / 378.0,  0.0, 250.0 / 621.0,
                                       125.0 / 594.0, 0.0, 512.0 / 1771.0};
  /// Embedded 4th-order weights.
  static constexpr double bhat[stages] = {
      2825.0 / 27648.0, 0.0,           18575.0 / 48384.0,
      13525.0 / 55296.0, 277.0 / 14336.0, 1.0 / 4.0};
};

/// Generic embedded Runge-Kutta driver parameterized on a Butcher tableau.
///
/// The right-hand side is any callable f(t, y, dydt) taking
/// (double, std::span<const double>, std::span<double>).  Workspace is
/// reused across calls, so one integrator instance per mode avoids
/// per-step allocation.
template <class Tableau>
class EmbeddedRk {
 public:
  EmbeddedRk() = default;

  /// Integrate y from t0 to t1 in place.  Throws NumericalFailure if the
  /// step size underflows or max_steps is exhausted.  The optional observer
  /// is called as observer(t, y) after every accepted step (and once at t0).
  template <class F, class Observer>
  OdeStats integrate(F&& f, double t0, double t1, std::vector<double>& y,
                     const OdeOptions& opts, Observer&& observer) {
    PLINGER_REQUIRE(t1 != t0, "integration interval is empty");
    PLINGER_REQUIRE(opts.rtol > 0.0 && opts.atol >= 0.0,
                    "tolerances must be positive");
    const std::size_t n = y.size();
    resize_workspace(n);
    rtol_ = opts.rtol;
    atol_ = opts.atol;

    const double dir = (t1 > t0) ? 1.0 : -1.0;
    double t = t0;
    double h = opts.h_init != 0.0 ? std::abs(opts.h_init)
                                  : std::abs(t1 - t0) / 100.0;
    if (opts.h_max > 0.0) h = std::min(h, opts.h_max);

    OdeStats stats;
    observer(t, std::span<const double>(y));

    while (dir * (t1 - t) > 0.0) {
      const double h_floor =
          opts.h_min > 0.0
              ? opts.h_min
              : 16.0 * std::numeric_limits<double>::epsilon() *
                    std::max(std::abs(t), std::abs(t1));
      h = std::min(h, std::abs(t1 - t));
      if (h < h_floor) {
        throw NumericalFailure("ODE step size underflow at t=" +
                               std::to_string(t));
      }
      if (stats.n_accepted + stats.n_rejected >= opts.max_steps) {
        throw NumericalFailure("ODE max_steps exceeded at t=" +
                               std::to_string(t));
      }

      const double err = attempt_step(f, t, dir * h, y, stats);
      if (err <= 1.0) {
        t += dir * h;
        y.swap(y_new_);
        observer(t, std::span<const double>(y));
        ++stats.n_accepted;
        h *= step_growth(err);
      } else {
        ++stats.n_rejected;
        h *= step_shrink(err);
      }
      if (opts.h_max > 0.0) h = std::min(h, opts.h_max);
    }
    return stats;
  }

  /// Overload without an observer.
  template <class F>
  OdeStats integrate(F&& f, double t0, double t1, std::vector<double>& y,
                     const OdeOptions& opts) {
    return integrate(std::forward<F>(f), t0, t1, y, opts,
                     [](double, std::span<const double>) {});
  }

 private:
  void resize_workspace(std::size_t n) {
    if (y_new_.size() != n) {
      y_new_.assign(n, 0.0);
      y_tmp_.assign(n, 0.0);
      d_.assign(n, 0.0);
      for (auto& k : k_) k.assign(n, 0.0);
    }
  }

  /// One trial step of size h (signed).  Fills y_new_ with the high-order
  /// solution and returns the weighted RMS error of the embedded estimate.
  ///
  /// All stage combinations run stage-major (axpy form): each inner loop
  /// streams one contiguous k_[m] row with a single scalar coefficient,
  /// which vectorizes cleanly, and stages with a zero tableau entry are
  /// skipped outright instead of multiplying by 0 per component.
  template <class F>
  double attempt_step(F&& f, double t, double h, const std::vector<double>& y,
                      OdeStats& stats) {
    constexpr int s = Tableau::stages;
    const std::size_t n = y.size();
    const double* yp = y.data();

    f(t, std::span<const double>(y), std::span<double>(k_[0]));
    for (int i = 1; i < s; ++i) {
      double* yt = y_tmp_.data();
      {
        const double a0 = h * Tableau::a[i][0];
        const double* k0 = k_[0].data();
        for (std::size_t j = 0; j < n; ++j) yt[j] = yp[j] + a0 * k0[j];
      }
      for (int m = 1; m < i; ++m) {
        if (Tableau::a[i][m] == 0.0) continue;
        const double am = h * Tableau::a[i][m];
        const double* km = k_[m].data();
        for (std::size_t j = 0; j < n; ++j) yt[j] += am * km[j];
      }
      f(t + Tableau::c[i] * h, std::span<const double>(y_tmp_),
        std::span<double>(k_[i]));
    }
    stats.n_rhs += s;

    // High-order solution y_new = y + h sum b[m] k[m].
    {
      double* yn = y_new_.data();
      const double b0 = h * Tableau::b[0];
      const double* k0 = k_[0].data();
      for (std::size_t j = 0; j < n; ++j) yn[j] = yp[j] + b0 * k0[j];
      for (int m = 1; m < s; ++m) {
        if (Tableau::b[m] == 0.0) continue;
        const double bm = h * Tableau::b[m];
        const double* km = k_[m].data();
        for (std::size_t j = 0; j < n; ++j) yn[j] += bm * km[j];
      }
    }

    // Embedded error vector d = h sum (b[m]-bhat[m]) k[m].
    {
      double* dp = d_.data();
      const double d0 = h * (Tableau::b[0] - Tableau::bhat[0]);
      const double* k0 = k_[0].data();
      for (std::size_t j = 0; j < n; ++j) dp[j] = d0 * k0[j];
      for (int m = 1; m < s; ++m) {
        if (Tableau::b[m] - Tableau::bhat[m] == 0.0) continue;
        const double dm = h * (Tableau::b[m] - Tableau::bhat[m]);
        const double* km = k_[m].data();
        for (std::size_t j = 0; j < n; ++j) dp[j] += dm * km[j];
      }
    }

    double err_sq = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double scale =
          atol_ + rtol_ * std::max(std::abs(yp[j]), std::abs(y_new_[j]));
      const double e = d_[j] / scale;
      err_sq += e * e;
    }
    return std::sqrt(err_sq / static_cast<double>(n));
  }

  static double step_growth(double err) {
    constexpr double safety = 0.9, max_growth = 5.0;
    if (err <= 0.0) return max_growth;
    return std::min(max_growth,
                    safety * std::pow(err, -1.0 / Tableau::order));
  }
  static double step_shrink(double err) {
    constexpr double safety = 0.9, min_shrink = 0.1;
    return std::max(min_shrink,
                    safety * std::pow(err, -1.0 / Tableau::order));
  }

  double rtol_ = 1e-6;   ///< copied from OdeOptions at integrate() entry
  double atol_ = 1e-12;  ///< copied from OdeOptions at integrate() entry
  std::vector<double> y_new_, y_tmp_, d_;
  std::vector<double> k_[Tableau::stages];
};

/// The paper's integrator: Verner 6(5) as in netlib DVERK.
using Dverk = EmbeddedRk<VernerDverkTableau>;
/// Comparison baseline for bench_integrator.
using CashKarp = EmbeddedRk<CashKarpTableau>;

/// Dormand-Prince 8(5,3) coefficients as in Hairer, Norsett & Wanner's
/// dop853 (Solving Ordinary Differential Equations I, 2nd ed.): the
/// 12-stage 8th-order pair with a combined 5th/3rd-order error
/// estimate, plus the 3 extra stages and d-weights of the 7th-order
/// continuous output.  Stage indices are 0-based: k[0..11] are the
/// trial stages, k[12] is the step-end derivative f(t+h, y1) (reused as
/// the next step's k[0]), k[13..15] are the dense-output stages.
struct Dop853Tableau {
  static constexpr int stages = 12;   ///< f-evals per trial step
  static constexpr int dense_stages = 3;
  static constexpr int order = 8;     ///< order of the propagated solution

  static constexpr double c[stages] = {
      0.0,
      0.0526001519587677318785587544488,
      0.0789002279381515978178381316732,
      0.118350341907227396726757197510,
      0.281649658092772603273242802490,
      1.0 / 3.0,
      0.25,
      0.307692307692307692307692307692,
      0.651282051282051282051282051282,
      0.6,
      6.0 / 7.0,
      1.0,
  };
  static constexpr double a[stages][stages] = {
      {},
      {5.26001519587677318785587544488e-2},
      {1.97250569845378994544595329183e-2, 5.91751709536136983633785987549e-2},
      {2.95875854768068491816892993775e-2, 0.0,
       8.87627564304205475450678981324e-2},
      {2.41365134159266685502369798665e-1, 0.0,
       -8.84549479328286085344864962717e-1, 9.24834003261792003115737966543e-1},
      {3.7037037037037037037037037037e-2, 0.0, 0.0,
       1.70828608729473871279604482173e-1, 1.25467687566822425016691814123e-1},
      {3.7109375e-2, 0.0, 0.0, 1.70252211019544039314978060272e-1,
       6.02165389804559606850219397283e-2, -1.7578125e-2},
      {3.70920001185047927108779319836e-2, 0.0, 0.0,
       1.70383925712239993810214054705e-1, 1.07262030446373284651809199168e-1,
       -1.53194377486244017527936158236e-2, 8.27378916381402288758473766002e-3},
      {6.24110958716075717114429577812e-1, 0.0, 0.0,
       -3.36089262944694129406857109825, -8.68219346841726006818189891453e-1,
       2.75920996994467083049415600797e1, 2.01540675504778934086186788979e1,
       -4.34898841810699588477366255144e1},
      {4.77662536438264365890433908527e-1, 0.0, 0.0,
       -2.48811461997166764192642586468, -5.90290826836842996371446475743e-1,
       2.12300514481811942347288949897e1, 1.52792336328824235832596922938e1,
       -3.32882109689848629194453265587e1, -2.03312017085086261358222928593e-2},
      {-9.3714243008598732571704021658e-1, 0.0, 0.0,
       5.18637242884406370830023853209, 1.09143734899672957818500254654,
       -8.14978701074692612513997267357, -1.85200656599969598641566180701e1,
       2.27394870993505042818970056734e1, 2.49360555267965238987089396762,
       -3.0467644718982195003823669022},
      {2.27331014751653820792359768449, 0.0, 0.0,
       -1.05344954667372501984066689879e1, -2.00087205822486249909675718444,
       -1.79589318631187989172765950534e1, 2.79488845294199600508499808837e1,
       -2.85899827713502369474065508674, -8.87285693353062954433549289258,
       1.23605671757943030647266201528e1, 6.43392746015763530355970484046e-1},
  };
  /// 8th-order solution weights.
  static constexpr double b[stages] = {
      5.42937341165687622380535766363e-2, 0.0, 0.0, 0.0, 0.0,
      4.45031289275240888144113950566, 1.89151789931450038304281599044,
      -5.8012039600105847814672114227, 3.1116436695781989440891606237e-1,
      -1.52160949662516078556178806805e-1, 2.01365400804030348374776537501e-1,
      4.47106157277725905176885569043e-2,
  };
  /// The 3rd-order comparison weights: err3 = sum(b k) - bhh1 k1 -
  /// bhh2 k9 - bhh3 k12 (damps the 5th-order estimate near rough
  /// solutions; Hairer's "stiffness-proof" combination).
  static constexpr double bhh1 = 0.244094488188976377952755905512;
  static constexpr double bhh2 = 0.733846688281611857341361741547;
  static constexpr double bhh3 = 0.0220588235294117647058823529412;
  /// 5th-order error weights (b - bhat, already differenced).
  static constexpr double er[stages] = {
      0.01312004499419488073250102996, 0.0, 0.0, 0.0, 0.0,
      -1.225156446376204440720569753, -0.4957589496572501915214079952,
      1.664377182454986536961530415, -0.3503288487499736816886487290,
      0.3341791187130174790297318841, 0.08192320648511571246570742613,
      -0.02235530786388629525884427845,
  };

  /// Dense-output stage nodes c14..c16 and their stage rows over
  /// k[0..15] (k13 at index 12, k14/k15 at 13/14).
  static constexpr double cd[dense_stages] = {0.1, 0.2, 7.0 / 9.0};
  static constexpr double ad[dense_stages][16] = {
      {5.61675022830479523392909219681e-2, 0.0, 0.0, 0.0, 0.0, 0.0,
       2.53500210216624811088794765333e-1, -2.46239037470802489917441475441e-1,
       -1.24191423263816360469010140626e-1, 1.5329179827876569731206322685e-1,
       8.20105229563468988491666602057e-3, 7.56789766054569976138603589584e-3,
       -8.298e-3},
      {3.18346481635021405060768473261e-2, 0.0, 0.0, 0.0, 0.0,
       2.83009096723667755288322961402e-2, 5.35419883074385676223797384372e-2,
       -5.49237485713909884646569340306e-2, 0.0, 0.0,
       -1.08347328697249322858509316994e-4, 3.82571090835658412954920192323e-4,
       -3.40465008687404560802977114492e-4, 1.41312443674632500278074618366e-1},
      {-4.28896301583791923408573538692e-1, 0.0, 0.0, 0.0, 0.0,
       -4.69762141536116384314449447206, 7.68342119606259904184240953878,
       4.06898981839711007970213554331, 3.56727187455281109270669543021e-1,
       0.0, 0.0, 0.0, -1.39902416515901462129418009734e-3,
       2.9475147891527723389556272149, -9.15095847217987001081870187138},
  };
  /// Continuous-output weights for cont4..cont7, over k[0..15].
  static constexpr double d[4][16] = {
      {-8.4289382761090128651353491142, 0.0, 0.0, 0.0, 0.0,
       0.56671495351937776962531783590, -3.0689499459498916912797304727,
       2.3846676565120698287728149680, 2.1170345824450282767155149946,
       -0.87139158377797299206789907490, 2.2404374302607882758541771650,
       0.63157877876946881815570249290, -0.088990336451333310820698117400,
       18.148505520854727256656404962, -9.1946323924783554000451984436,
       -4.4360363875948939664310572000},
      {10.427508642579134603413151009, 0.0, 0.0, 0.0, 0.0,
       242.28349177525818288430175319, 165.20045171727028198505394887,
       -374.54675472269020279518312152, -22.113666853125306036270938578,
       7.7334326684722638389603898808, -30.674084731089398182061213626,
       -9.3321305264302278729567221706, 15.697238121770843886131091075,
       -31.139403219565177677282850411, -9.3529243588444783865713862664,
       35.816841486394083752465898540},
      {19.985053242002433820987653617, 0.0, 0.0, 0.0, 0.0,
       -387.03730874935176555105901742, -189.17813819516756882830838328,
       527.80815920542364900561016686, -11.573902539959630126141871134,
       6.8812326946963000169666922661, -1.0006050966910838403183860980,
       0.77771377980534432092869265740, -2.7782057523535084065932004339,
       -60.196695231264120758267380846, 84.320405506677161018159903784,
       11.992291136182789328035130030},
      {-25.693933462703749003312586129, 0.0, 0.0, 0.0, 0.0,
       -154.18974869023643374053993627, -231.52937917604549567536039109,
       357.63911791061412378285349910, 93.405324183624310003907691704,
       -37.458323136451633156875139351, 104.09964950896230045147246184,
       29.840293426660503123344363579, -43.533456590011143754432175058,
       96.324553959188282948394950600, -39.177261675615439165231486172,
       -149.72683625798562581422125276},
  };
};

/// Dormand-Prince 8(5,3) with 7th-order dense output (Hairer's dop853).
///
/// A peer of EmbeddedRk with two structural upgrades over the paper's
/// DVERK core:
///
///  * the 8th-order pair takes far fewer RHS evaluations at tight
///    tolerances (the step-end derivative is reused as the next step's
///    first stage, so an accepted step costs 12 evals, a rejected one
///    11), with the combined 5th/3rd error estimate and Hairer's
///    stabilized step controller;
///  * integrate_dense() answers output times by evaluating the
///    continuous extension *inside* an accepted step (3 extra stages,
///    paid only for steps that actually contain a sample) instead of
///    clamping the step to land on each output time — the sampling
///    cost no longer scales with the output grid.
class Dop853 {
 public:
  using T = Dop853Tableau;
  static constexpr int order = T::order;

  Dop853() = default;

  /// Integrate y from t0 to t1 in place; same contract as
  /// EmbeddedRk::integrate (observer after every accepted step and once
  /// at t0; throws NumericalFailure on step underflow / max_steps).
  template <class F, class Observer>
  OdeStats integrate(F&& f, double t0, double t1, std::vector<double>& y,
                     const OdeOptions& opts, Observer&& observer) {
    return run(std::forward<F>(f), t0, t1, y, opts,
               std::forward<Observer>(observer), std::span<const double>{},
               [](double, std::span<const double>) {});
  }

  /// Overload without an observer.
  template <class F>
  OdeStats integrate(F&& f, double t0, double t1, std::vector<double>& y,
                     const OdeOptions& opts) {
    return integrate(std::forward<F>(f), t0, t1, y, opts,
                     [](double, std::span<const double>) {});
  }

  /// Integrate with dense-output sampling: on_sample(t, y_interp) fires
  /// once per entry of sample_ts, in order, with the 7th-order
  /// continuous extension of the accepted step containing t.  sample_ts
  /// must be sorted along the integration direction; entries at the
  /// interval endpoints are answered from the endpoint states exactly.
  /// The step size is never clamped to a sample time.
  template <class F, class Sampler>
  OdeStats integrate_dense(F&& f, double t0, double t1,
                           std::vector<double>& y, const OdeOptions& opts,
                           std::span<const double> sample_ts,
                           Sampler&& on_sample) {
    return run(std::forward<F>(f), t0, t1, y, opts,
               [](double, std::span<const double>) {}, sample_ts,
               std::forward<Sampler>(on_sample));
  }

 private:
  template <class F, class Observer, class Sampler>
  OdeStats run(F&& f, double t0, double t1, std::vector<double>& y,
               const OdeOptions& opts, Observer&& observer,
               std::span<const double> sample_ts, Sampler&& on_sample) {
    PLINGER_REQUIRE(t1 != t0, "integration interval is empty");
    PLINGER_REQUIRE(opts.rtol > 0.0 && opts.atol >= 0.0,
                    "tolerances must be positive");
    const std::size_t n = y.size();
    resize_workspace(n);
    rtol_ = opts.rtol;
    atol_ = opts.atol;

    const double dir = (t1 > t0) ? 1.0 : -1.0;
    double t = t0;
    double h = opts.h_init != 0.0 ? std::abs(opts.h_init)
                                  : std::abs(t1 - t0) / 100.0;
    if (opts.h_max > 0.0) h = std::min(h, opts.h_max);

    OdeStats stats;
    observer(t, std::span<const double>(y));
    std::size_t si = 0;
    while (si < sample_ts.size() && dir * (sample_ts[si] - t0) <= 0.0) {
      on_sample(sample_ts[si], std::span<const double>(y));
      ++si;
    }

    f(t, std::span<const double>(y), std::span<double>(k_[0]));
    ++stats.n_rhs;

    // Hairer's stabilized controller: hnew = h / fac with
    // fac = fac11 / facold^beta clipped to [1/fac1, 1/fac2]^-1 around
    // safe.  beta > 0 damps oscillating step sequences; the dop853
    // default is 0 (pure err^(-1/8) with memory disabled).
    constexpr double kSafe = 0.9, kFac1 = 0.333, kFac2 = 6.0, kBeta = 0.0;
    constexpr double kExpo1 = 1.0 / 8.0 - kBeta * 0.2;
    const double facc1 = 1.0 / kFac1, facc2 = 1.0 / kFac2;
    double facold = 1e-4;
    bool rejected = false;

    while (dir * (t1 - t) > 0.0) {
      const double h_floor =
          opts.h_min > 0.0
              ? opts.h_min
              : 16.0 * std::numeric_limits<double>::epsilon() *
                    std::max(std::abs(t), std::abs(t1));
      h = std::min(h, std::abs(t1 - t));
      if (h < h_floor) {
        throw NumericalFailure("ODE step size underflow at t=" +
                               std::to_string(t));
      }
      if (stats.n_accepted + stats.n_rejected >= opts.max_steps) {
        throw NumericalFailure("ODE max_steps exceeded at t=" +
                               std::to_string(t));
      }

      const double err = attempt_step(f, t, dir * h, y, stats);
      const double fac11 = std::pow(err, kExpo1);
      if (err <= 1.0) {
        double fac = fac11 / std::pow(facold, kBeta);
        fac = std::max(facc2, std::min(facc1, fac / kSafe));
        facold = std::max(err, 1e-4);

        const double t_new = t + dir * h;
        // Step-end derivative: next step's first stage (FSAL) and the
        // cont3 term of the continuous extension.
        f(t_new, std::span<const double>(y_new_), std::span<double>(k_[12]));
        ++stats.n_rhs;

        bool dense_ready = false;
        while (si < sample_ts.size() &&
               dir * (sample_ts[si] - t_new) <= 0.0) {
          if (sample_ts[si] == t_new) {
            on_sample(t_new, std::span<const double>(y_new_));
          } else {
            if (!dense_ready) {
              prepare_dense(f, t, dir * h, y, stats);
              dense_ready = true;
            }
            dense_eval(sample_ts[si], t, dir * h);
            on_sample(sample_ts[si], std::span<const double>(y_sample_));
          }
          ++si;
        }

        t = t_new;
        y.swap(y_new_);
        k_[0].swap(k_[12]);
        observer(t, std::span<const double>(y));
        ++stats.n_accepted;
        double h_new = h / fac;
        if (rejected) h_new = std::min(h_new, h);
        h = h_new;
        rejected = false;
      } else {
        ++stats.n_rejected;
        h = h / std::min(facc1, fac11 / kSafe);
        rejected = true;
      }
      if (opts.h_max > 0.0) h = std::min(h, opts.h_max);
    }
    // Sample times at (or, by roundoff, just past) t1 that the last
    // accepted step did not cover are answered from the final state.
    while (si < sample_ts.size()) {
      on_sample(sample_ts[si], std::span<const double>(y));
      ++si;
    }
    return stats;
  }

  void resize_workspace(std::size_t n) {
    if (y_new_.size() != n) {
      y_new_.assign(n, 0.0);
      y_tmp_.assign(n, 0.0);
      y_sample_.assign(n, 0.0);
      bsum_.assign(n, 0.0);
      for (auto& k : k_) k.assign(n, 0.0);
      for (auto& c : cont_) c.assign(n, 0.0);
    }
  }

  /// One trial step of size h (signed).  Assumes k_[0] = f(t, y)
  /// (FSAL), fills stages k_[1..11], bsum_ = sum b[m] k[m], y_new_, and
  /// returns Hairer's combined 5th/3rd error measure (accept when
  /// <= 1).  Stage-major axpy loops as in EmbeddedRk.
  template <class F>
  double attempt_step(F&& f, double t, double h, const std::vector<double>& y,
                      OdeStats& stats) {
    constexpr int s = T::stages;
    const std::size_t n = y.size();
    const double* yp = y.data();

    for (int i = 1; i < s; ++i) {
      double* yt = y_tmp_.data();
      {
        const double a0 = h * T::a[i][0];
        const double* k0 = k_[0].data();
        for (std::size_t j = 0; j < n; ++j) yt[j] = yp[j] + a0 * k0[j];
      }
      for (int m = 1; m < i; ++m) {
        if (T::a[i][m] == 0.0) continue;
        const double am = h * T::a[i][m];
        const double* km = k_[m].data();
        for (std::size_t j = 0; j < n; ++j) yt[j] += am * km[j];
      }
      f(t + T::c[i] * h, std::span<const double>(y_tmp_),
        std::span<double>(k_[i]));
    }
    stats.n_rhs += s - 1;

    // bsum = sum b[m] k[m] (unscaled), y_new = y + h bsum.
    {
      double* bs = bsum_.data();
      const double b0 = T::b[0];
      const double* k0 = k_[0].data();
      for (std::size_t j = 0; j < n; ++j) bs[j] = b0 * k0[j];
      for (int m = 1; m < s; ++m) {
        if (T::b[m] == 0.0) continue;
        const double bm = T::b[m];
        const double* km = k_[m].data();
        for (std::size_t j = 0; j < n; ++j) bs[j] += bm * km[j];
      }
      double* yn = y_new_.data();
      for (std::size_t j = 0; j < n; ++j) yn[j] = yp[j] + h * bs[j];
    }

    // 5th-order estimate from the er weights, 3rd-order from the bhh
    // difference; the combination err5^2/sqrt(err5^2 + 0.01 err3^2)
    // keeps the 5th-order estimate in charge while damping it where the
    // 3rd-order one explodes (Hairer's dop853 error).
    double err5_sq = 0.0, err3_sq = 0.0;
    {
      const double* k1 = k_[0].data();
      const double* k9 = k_[8].data();
      const double* k12 = k_[11].data();
      for (std::size_t j = 0; j < n; ++j) {
        const double sk =
            atol_ + rtol_ * std::max(std::abs(yp[j]), std::abs(y_new_[j]));
        double e = T::er[0] * k1[j];
        for (int m = 5; m < s; ++m) e += T::er[m] * k_[m][j];
        const double e5 = e / sk;
        const double e3 = (bsum_[j] - T::bhh1 * k1[j] - T::bhh2 * k9[j] -
                           T::bhh3 * k12[j]) /
                          sk;
        err5_sq += e5 * e5;
        err3_sq += e3 * e3;
      }
    }
    double deno = err5_sq + 0.01 * err3_sq;
    if (deno <= 0.0) deno = 1.0;
    return std::abs(h) * err5_sq *
           std::sqrt(1.0 / (static_cast<double>(n) * deno));
  }

  /// Build the continuous extension of the step [t, t+h]: cont0..3 from
  /// the step endpoints and k1/k13, cont4..7 from the d-weights over
  /// all 16 stages (the 3 extra stages are evaluated here — the cost is
  /// paid only for steps that contain a sample).
  template <class F>
  void prepare_dense(F&& f, double t, double h, const std::vector<double>& y,
                     OdeStats& stats) {
    constexpr int s = T::stages;
    const std::size_t n = y.size();
    const double* yp = y.data();
    const double* yn = y_new_.data();
    const double* k1 = k_[0].data();
    const double* k13 = k_[12].data();
    for (std::size_t j = 0; j < n; ++j) {
      const double ydiff = yn[j] - yp[j];
      const double bspl = h * k1[j] - ydiff;
      cont_[0][j] = yp[j];
      cont_[1][j] = ydiff;
      cont_[2][j] = bspl;
      cont_[3][j] = ydiff - h * k13[j] - bspl;
    }
    for (int d = 0; d < T::dense_stages; ++d) {
      double* yt = y_tmp_.data();
      {
        const double a0 = h * T::ad[d][0];
        for (std::size_t j = 0; j < n; ++j) yt[j] = yp[j] + a0 * k1[j];
      }
      for (int m = 1; m < s + 1 + d; ++m) {
        if (T::ad[d][m] == 0.0) continue;
        const double am = h * T::ad[d][m];
        const double* km = k_[m].data();
        for (std::size_t j = 0; j < n; ++j) yt[j] += am * km[j];
      }
      f(t + T::cd[d] * h, std::span<const double>(y_tmp_),
        std::span<double>(k_[s + 1 + d]));
    }
    stats.n_rhs += T::dense_stages;
    for (int r = 0; r < 4; ++r) {
      double* cr = cont_[4 + r].data();
      {
        const double d0 = h * T::d[r][0];
        for (std::size_t j = 0; j < n; ++j) cr[j] = d0 * k1[j];
      }
      for (int m = 5; m < 16; ++m) {
        if (T::d[r][m] == 0.0) continue;
        const double dm = h * T::d[r][m];
        const double* km = k_[m].data();
        for (std::size_t j = 0; j < n; ++j) cr[j] += dm * km[j];
      }
    }
  }

  /// Evaluate the continuous extension at ts inside [t_old, t_old+h],
  /// into y_sample_.
  void dense_eval(double ts, double t_old, double h) {
    const double s = (ts - t_old) / h;
    const double s1 = 1.0 - s;
    const std::size_t n = y_sample_.size();
    for (std::size_t j = 0; j < n; ++j) {
      y_sample_[j] =
          cont_[0][j] +
          s * (cont_[1][j] +
               s1 * (cont_[2][j] +
                     s * (cont_[3][j] +
                          s1 * (cont_[4][j] +
                                s * (cont_[5][j] +
                                     s1 * (cont_[6][j] +
                                           s * cont_[7][j]))))));
    }
  }

  double rtol_ = 1e-6;
  double atol_ = 1e-12;
  std::vector<double> y_new_, y_tmp_, y_sample_, bsum_;
  std::vector<double> k_[16];    ///< trial stages, k13, dense stages
  std::vector<double> cont_[8];  ///< continuous-output coefficients
};

}  // namespace plinger::math
