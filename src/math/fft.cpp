#include "math/fft.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace plinger::math {

bool is_pow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

void fft(std::span<std::complex<double>> data, int sign) {
  const std::size_t n = data.size();
  PLINGER_REQUIRE(is_pow2(n), "fft size must be a power of two");
  PLINGER_REQUIRE(sign == 1 || sign == -1, "fft sign must be +-1");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        static_cast<double>(sign) * 2.0 * std::numbers::pi /
        static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = data[i + j];
        const std::complex<double> v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

void fft2d(std::span<std::complex<double>> data, std::size_t n, int sign) {
  PLINGER_REQUIRE(data.size() == n * n, "fft2d: data must be n*n");
  PLINGER_REQUIRE(is_pow2(n), "fft2d size must be a power of two");
  // Rows.
  for (std::size_t r = 0; r < n; ++r) {
    fft(data.subspan(r * n, n), sign);
  }
  // Columns via transpose-free strided gather.
  std::vector<std::complex<double>> col(n);
  for (std::size_t c = 0; c < n; ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = data[r * n + c];
    fft(col, sign);
    for (std::size_t r = 0; r < n; ++r) data[r * n + c] = col[r];
  }
}

void fft3d(std::span<std::complex<double>> data, std::size_t n, int sign) {
  PLINGER_REQUIRE(data.size() == n * n * n, "fft3d: data must be n^3");
  PLINGER_REQUIRE(is_pow2(n), "fft3d size must be a power of two");
  // z lines are contiguous.
  for (std::size_t i = 0; i < n * n; ++i) {
    fft(data.subspan(i * n, n), sign);
  }
  // y and x lines via strided gather.
  std::vector<std::complex<double>> line(n);
  for (std::size_t ix = 0; ix < n; ++ix) {
    for (std::size_t iz = 0; iz < n; ++iz) {
      for (std::size_t iy = 0; iy < n; ++iy) {
        line[iy] = data[(ix * n + iy) * n + iz];
      }
      fft(line, sign);
      for (std::size_t iy = 0; iy < n; ++iy) {
        data[(ix * n + iy) * n + iz] = line[iy];
      }
    }
  }
  for (std::size_t iy = 0; iy < n; ++iy) {
    for (std::size_t iz = 0; iz < n; ++iz) {
      for (std::size_t ix = 0; ix < n; ++ix) {
        line[ix] = data[(ix * n + iy) * n + iz];
      }
      fft(line, sign);
      for (std::size_t ix = 0; ix < n; ++ix) {
        data[(ix * n + iy) * n + iz] = line[ix];
      }
    }
  }
}

}  // namespace plinger::math
