# Empty dependencies file for bench_lmax.
# This may be replaced when dependencies are built.
