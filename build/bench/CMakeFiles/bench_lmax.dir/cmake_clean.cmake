file(REMOVE_RECURSE
  "CMakeFiles/bench_lmax.dir/bench_lmax.cpp.o"
  "CMakeFiles/bench_lmax.dir/bench_lmax.cpp.o.d"
  "bench_lmax"
  "bench_lmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
