# Empty dependencies file for bench_los.
# This may be replaced when dependencies are built.
