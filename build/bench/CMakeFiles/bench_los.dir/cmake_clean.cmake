file(REMOVE_RECURSE
  "CMakeFiles/bench_los.dir/bench_los.cpp.o"
  "CMakeFiles/bench_los.dir/bench_los.cpp.o.d"
  "bench_los"
  "bench_los.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_los.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
