file(REMOVE_RECURSE
  "CMakeFiles/bench_skymap.dir/bench_skymap.cpp.o"
  "CMakeFiles/bench_skymap.dir/bench_skymap.cpp.o.d"
  "bench_skymap"
  "bench_skymap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skymap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
