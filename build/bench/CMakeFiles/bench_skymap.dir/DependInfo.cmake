
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_skymap.cpp" "bench/CMakeFiles/bench_skymap.dir/bench_skymap.cpp.o" "gcc" "bench/CMakeFiles/bench_skymap.dir/bench_skymap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plinger/CMakeFiles/plinger_plinger.dir/DependInfo.cmake"
  "/root/repo/build/src/spectra/CMakeFiles/plinger_spectra.dir/DependInfo.cmake"
  "/root/repo/build/src/skymap/CMakeFiles/plinger_skymap.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/plinger_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/plinger_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/boltzmann/CMakeFiles/plinger_boltzmann.dir/DependInfo.cmake"
  "/root/repo/build/src/cosmo/CMakeFiles/plinger_cosmo.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/plinger_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plinger_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
