# Empty compiler generated dependencies file for bench_skymap.
# This may be replaced when dependencies are built.
