# Empty compiler generated dependencies file for bench_floprate.
# This may be replaced when dependencies are built.
