file(REMOVE_RECURSE
  "CMakeFiles/bench_floprate.dir/bench_floprate.cpp.o"
  "CMakeFiles/bench_floprate.dir/bench_floprate.cpp.o.d"
  "bench_floprate"
  "bench_floprate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_floprate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
