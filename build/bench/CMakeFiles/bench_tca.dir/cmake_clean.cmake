file(REMOVE_RECURSE
  "CMakeFiles/bench_tca.dir/bench_tca.cpp.o"
  "CMakeFiles/bench_tca.dir/bench_tca.cpp.o.d"
  "bench_tca"
  "bench_tca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
