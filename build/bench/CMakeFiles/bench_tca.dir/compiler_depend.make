# Empty compiler generated dependencies file for bench_tca.
# This may be replaced when dependencies are built.
