file(REMOVE_RECURSE
  "CMakeFiles/bench_integrator.dir/bench_integrator.cpp.o"
  "CMakeFiles/bench_integrator.dir/bench_integrator.cpp.o.d"
  "bench_integrator"
  "bench_integrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_integrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
