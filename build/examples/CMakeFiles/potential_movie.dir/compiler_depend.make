# Empty compiler generated dependencies file for potential_movie.
# This may be replaced when dependencies are built.
