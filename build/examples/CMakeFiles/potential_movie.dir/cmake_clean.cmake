file(REMOVE_RECURSE
  "CMakeFiles/potential_movie.dir/potential_movie.cpp.o"
  "CMakeFiles/potential_movie.dir/potential_movie.cpp.o.d"
  "potential_movie"
  "potential_movie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/potential_movie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
