file(REMOVE_RECURSE
  "CMakeFiles/linger_cli.dir/linger_cli.cpp.o"
  "CMakeFiles/linger_cli.dir/linger_cli.cpp.o.d"
  "linger_cli"
  "linger_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linger_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
