# Empty dependencies file for linger_cli.
# This may be replaced when dependencies are built.
