file(REMOVE_RECURSE
  "CMakeFiles/matter_power.dir/matter_power.cpp.o"
  "CMakeFiles/matter_power.dir/matter_power.cpp.o.d"
  "matter_power"
  "matter_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matter_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
