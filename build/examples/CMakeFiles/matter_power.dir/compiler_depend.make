# Empty compiler generated dependencies file for matter_power.
# This may be replaced when dependencies are built.
