# Empty compiler generated dependencies file for skymap_demo.
# This may be replaced when dependencies are built.
