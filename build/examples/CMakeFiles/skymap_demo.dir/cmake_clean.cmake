file(REMOVE_RECURSE
  "CMakeFiles/skymap_demo.dir/skymap_demo.cpp.o"
  "CMakeFiles/skymap_demo.dir/skymap_demo.cpp.o.d"
  "skymap_demo"
  "skymap_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skymap_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
