file(REMOVE_RECURSE
  "CMakeFiles/nbody_ics.dir/nbody_ics.cpp.o"
  "CMakeFiles/nbody_ics.dir/nbody_ics.cpp.o.d"
  "nbody_ics"
  "nbody_ics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nbody_ics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
