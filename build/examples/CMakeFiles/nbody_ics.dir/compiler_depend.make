# Empty compiler generated dependencies file for nbody_ics.
# This may be replaced when dependencies are built.
