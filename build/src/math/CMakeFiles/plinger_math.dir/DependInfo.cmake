
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/bessel.cpp" "src/math/CMakeFiles/plinger_math.dir/bessel.cpp.o" "gcc" "src/math/CMakeFiles/plinger_math.dir/bessel.cpp.o.d"
  "/root/repo/src/math/brent.cpp" "src/math/CMakeFiles/plinger_math.dir/brent.cpp.o" "gcc" "src/math/CMakeFiles/plinger_math.dir/brent.cpp.o.d"
  "/root/repo/src/math/fft.cpp" "src/math/CMakeFiles/plinger_math.dir/fft.cpp.o" "gcc" "src/math/CMakeFiles/plinger_math.dir/fft.cpp.o.d"
  "/root/repo/src/math/legendre.cpp" "src/math/CMakeFiles/plinger_math.dir/legendre.cpp.o" "gcc" "src/math/CMakeFiles/plinger_math.dir/legendre.cpp.o.d"
  "/root/repo/src/math/quadrature.cpp" "src/math/CMakeFiles/plinger_math.dir/quadrature.cpp.o" "gcc" "src/math/CMakeFiles/plinger_math.dir/quadrature.cpp.o.d"
  "/root/repo/src/math/rng.cpp" "src/math/CMakeFiles/plinger_math.dir/rng.cpp.o" "gcc" "src/math/CMakeFiles/plinger_math.dir/rng.cpp.o.d"
  "/root/repo/src/math/spline.cpp" "src/math/CMakeFiles/plinger_math.dir/spline.cpp.o" "gcc" "src/math/CMakeFiles/plinger_math.dir/spline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/plinger_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
