file(REMOVE_RECURSE
  "CMakeFiles/plinger_math.dir/bessel.cpp.o"
  "CMakeFiles/plinger_math.dir/bessel.cpp.o.d"
  "CMakeFiles/plinger_math.dir/brent.cpp.o"
  "CMakeFiles/plinger_math.dir/brent.cpp.o.d"
  "CMakeFiles/plinger_math.dir/fft.cpp.o"
  "CMakeFiles/plinger_math.dir/fft.cpp.o.d"
  "CMakeFiles/plinger_math.dir/legendre.cpp.o"
  "CMakeFiles/plinger_math.dir/legendre.cpp.o.d"
  "CMakeFiles/plinger_math.dir/quadrature.cpp.o"
  "CMakeFiles/plinger_math.dir/quadrature.cpp.o.d"
  "CMakeFiles/plinger_math.dir/rng.cpp.o"
  "CMakeFiles/plinger_math.dir/rng.cpp.o.d"
  "CMakeFiles/plinger_math.dir/spline.cpp.o"
  "CMakeFiles/plinger_math.dir/spline.cpp.o.d"
  "libplinger_math.a"
  "libplinger_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plinger_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
