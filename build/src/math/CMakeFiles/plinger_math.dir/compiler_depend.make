# Empty compiler generated dependencies file for plinger_math.
# This may be replaced when dependencies are built.
