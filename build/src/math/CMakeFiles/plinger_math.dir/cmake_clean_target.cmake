file(REMOVE_RECURSE
  "libplinger_math.a"
)
