file(REMOVE_RECURSE
  "CMakeFiles/plinger_spectra.dir/bandpower.cpp.o"
  "CMakeFiles/plinger_spectra.dir/bandpower.cpp.o.d"
  "CMakeFiles/plinger_spectra.dir/cl.cpp.o"
  "CMakeFiles/plinger_spectra.dir/cl.cpp.o.d"
  "CMakeFiles/plinger_spectra.dir/cosapp_data.cpp.o"
  "CMakeFiles/plinger_spectra.dir/cosapp_data.cpp.o.d"
  "CMakeFiles/plinger_spectra.dir/matterpower.cpp.o"
  "CMakeFiles/plinger_spectra.dir/matterpower.cpp.o.d"
  "libplinger_spectra.a"
  "libplinger_spectra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plinger_spectra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
