file(REMOVE_RECURSE
  "libplinger_spectra.a"
)
