
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spectra/bandpower.cpp" "src/spectra/CMakeFiles/plinger_spectra.dir/bandpower.cpp.o" "gcc" "src/spectra/CMakeFiles/plinger_spectra.dir/bandpower.cpp.o.d"
  "/root/repo/src/spectra/cl.cpp" "src/spectra/CMakeFiles/plinger_spectra.dir/cl.cpp.o" "gcc" "src/spectra/CMakeFiles/plinger_spectra.dir/cl.cpp.o.d"
  "/root/repo/src/spectra/cosapp_data.cpp" "src/spectra/CMakeFiles/plinger_spectra.dir/cosapp_data.cpp.o" "gcc" "src/spectra/CMakeFiles/plinger_spectra.dir/cosapp_data.cpp.o.d"
  "/root/repo/src/spectra/matterpower.cpp" "src/spectra/CMakeFiles/plinger_spectra.dir/matterpower.cpp.o" "gcc" "src/spectra/CMakeFiles/plinger_spectra.dir/matterpower.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/boltzmann/CMakeFiles/plinger_boltzmann.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/plinger_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plinger_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cosmo/CMakeFiles/plinger_cosmo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
