# Empty compiler generated dependencies file for plinger_spectra.
# This may be replaced when dependencies are built.
