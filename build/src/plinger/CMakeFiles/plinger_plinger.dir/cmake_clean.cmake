file(REMOVE_RECURSE
  "CMakeFiles/plinger_plinger.dir/driver.cpp.o"
  "CMakeFiles/plinger_plinger.dir/driver.cpp.o.d"
  "CMakeFiles/plinger_plinger.dir/protocol.cpp.o"
  "CMakeFiles/plinger_plinger.dir/protocol.cpp.o.d"
  "CMakeFiles/plinger_plinger.dir/records.cpp.o"
  "CMakeFiles/plinger_plinger.dir/records.cpp.o.d"
  "CMakeFiles/plinger_plinger.dir/schedule.cpp.o"
  "CMakeFiles/plinger_plinger.dir/schedule.cpp.o.d"
  "CMakeFiles/plinger_plinger.dir/virtual_cluster.cpp.o"
  "CMakeFiles/plinger_plinger.dir/virtual_cluster.cpp.o.d"
  "libplinger_plinger.a"
  "libplinger_plinger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plinger_plinger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
