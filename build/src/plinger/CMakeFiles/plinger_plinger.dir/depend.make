# Empty dependencies file for plinger_plinger.
# This may be replaced when dependencies are built.
