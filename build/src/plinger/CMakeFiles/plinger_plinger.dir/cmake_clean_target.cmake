file(REMOVE_RECURSE
  "libplinger_plinger.a"
)
