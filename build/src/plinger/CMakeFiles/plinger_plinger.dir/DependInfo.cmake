
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plinger/driver.cpp" "src/plinger/CMakeFiles/plinger_plinger.dir/driver.cpp.o" "gcc" "src/plinger/CMakeFiles/plinger_plinger.dir/driver.cpp.o.d"
  "/root/repo/src/plinger/protocol.cpp" "src/plinger/CMakeFiles/plinger_plinger.dir/protocol.cpp.o" "gcc" "src/plinger/CMakeFiles/plinger_plinger.dir/protocol.cpp.o.d"
  "/root/repo/src/plinger/records.cpp" "src/plinger/CMakeFiles/plinger_plinger.dir/records.cpp.o" "gcc" "src/plinger/CMakeFiles/plinger_plinger.dir/records.cpp.o.d"
  "/root/repo/src/plinger/schedule.cpp" "src/plinger/CMakeFiles/plinger_plinger.dir/schedule.cpp.o" "gcc" "src/plinger/CMakeFiles/plinger_plinger.dir/schedule.cpp.o.d"
  "/root/repo/src/plinger/virtual_cluster.cpp" "src/plinger/CMakeFiles/plinger_plinger.dir/virtual_cluster.cpp.o" "gcc" "src/plinger/CMakeFiles/plinger_plinger.dir/virtual_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/boltzmann/CMakeFiles/plinger_boltzmann.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/plinger_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/plinger_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plinger_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cosmo/CMakeFiles/plinger_cosmo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
