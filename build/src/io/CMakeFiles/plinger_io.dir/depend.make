# Empty dependencies file for plinger_io.
# This may be replaced when dependencies are built.
