file(REMOVE_RECURSE
  "libplinger_io.a"
)
