file(REMOVE_RECURSE
  "CMakeFiles/plinger_io.dir/ascii_table.cpp.o"
  "CMakeFiles/plinger_io.dir/ascii_table.cpp.o.d"
  "CMakeFiles/plinger_io.dir/fortran_binary.cpp.o"
  "CMakeFiles/plinger_io.dir/fortran_binary.cpp.o.d"
  "CMakeFiles/plinger_io.dir/ppm.cpp.o"
  "CMakeFiles/plinger_io.dir/ppm.cpp.o.d"
  "libplinger_io.a"
  "libplinger_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plinger_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
