file(REMOVE_RECURSE
  "libplinger_common.a"
)
