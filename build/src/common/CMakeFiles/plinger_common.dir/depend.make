# Empty dependencies file for plinger_common.
# This may be replaced when dependencies are built.
