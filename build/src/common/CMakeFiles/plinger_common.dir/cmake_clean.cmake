file(REMOVE_RECURSE
  "CMakeFiles/plinger_common.dir/error.cpp.o"
  "CMakeFiles/plinger_common.dir/error.cpp.o.d"
  "libplinger_common.a"
  "libplinger_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plinger_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
