
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cosmo/background.cpp" "src/cosmo/CMakeFiles/plinger_cosmo.dir/background.cpp.o" "gcc" "src/cosmo/CMakeFiles/plinger_cosmo.dir/background.cpp.o.d"
  "/root/repo/src/cosmo/nu_density.cpp" "src/cosmo/CMakeFiles/plinger_cosmo.dir/nu_density.cpp.o" "gcc" "src/cosmo/CMakeFiles/plinger_cosmo.dir/nu_density.cpp.o.d"
  "/root/repo/src/cosmo/params.cpp" "src/cosmo/CMakeFiles/plinger_cosmo.dir/params.cpp.o" "gcc" "src/cosmo/CMakeFiles/plinger_cosmo.dir/params.cpp.o.d"
  "/root/repo/src/cosmo/recombination.cpp" "src/cosmo/CMakeFiles/plinger_cosmo.dir/recombination.cpp.o" "gcc" "src/cosmo/CMakeFiles/plinger_cosmo.dir/recombination.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/plinger_common.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/plinger_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
