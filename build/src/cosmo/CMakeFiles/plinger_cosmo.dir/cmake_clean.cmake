file(REMOVE_RECURSE
  "CMakeFiles/plinger_cosmo.dir/background.cpp.o"
  "CMakeFiles/plinger_cosmo.dir/background.cpp.o.d"
  "CMakeFiles/plinger_cosmo.dir/nu_density.cpp.o"
  "CMakeFiles/plinger_cosmo.dir/nu_density.cpp.o.d"
  "CMakeFiles/plinger_cosmo.dir/params.cpp.o"
  "CMakeFiles/plinger_cosmo.dir/params.cpp.o.d"
  "CMakeFiles/plinger_cosmo.dir/recombination.cpp.o"
  "CMakeFiles/plinger_cosmo.dir/recombination.cpp.o.d"
  "libplinger_cosmo.a"
  "libplinger_cosmo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plinger_cosmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
