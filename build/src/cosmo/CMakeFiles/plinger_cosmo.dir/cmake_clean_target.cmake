file(REMOVE_RECURSE
  "libplinger_cosmo.a"
)
