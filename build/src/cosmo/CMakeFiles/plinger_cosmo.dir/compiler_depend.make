# Empty compiler generated dependencies file for plinger_cosmo.
# This may be replaced when dependencies are built.
