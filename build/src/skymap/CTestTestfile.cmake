# CMake generated Testfile for 
# Source directory: /root/repo/src/skymap
# Build directory: /root/repo/build/src/skymap
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
