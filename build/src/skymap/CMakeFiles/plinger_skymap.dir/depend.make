# Empty dependencies file for plinger_skymap.
# This may be replaced when dependencies are built.
