file(REMOVE_RECURSE
  "libplinger_skymap.a"
)
