file(REMOVE_RECURSE
  "CMakeFiles/plinger_skymap.dir/alm.cpp.o"
  "CMakeFiles/plinger_skymap.dir/alm.cpp.o.d"
  "CMakeFiles/plinger_skymap.dir/synthesis.cpp.o"
  "CMakeFiles/plinger_skymap.dir/synthesis.cpp.o.d"
  "libplinger_skymap.a"
  "libplinger_skymap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plinger_skymap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
