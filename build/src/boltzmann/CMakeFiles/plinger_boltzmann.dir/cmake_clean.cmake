file(REMOVE_RECURSE
  "CMakeFiles/plinger_boltzmann.dir/equations.cpp.o"
  "CMakeFiles/plinger_boltzmann.dir/equations.cpp.o.d"
  "CMakeFiles/plinger_boltzmann.dir/gauge.cpp.o"
  "CMakeFiles/plinger_boltzmann.dir/gauge.cpp.o.d"
  "CMakeFiles/plinger_boltzmann.dir/los.cpp.o"
  "CMakeFiles/plinger_boltzmann.dir/los.cpp.o.d"
  "CMakeFiles/plinger_boltzmann.dir/mode_evolution.cpp.o"
  "CMakeFiles/plinger_boltzmann.dir/mode_evolution.cpp.o.d"
  "libplinger_boltzmann.a"
  "libplinger_boltzmann.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plinger_boltzmann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
