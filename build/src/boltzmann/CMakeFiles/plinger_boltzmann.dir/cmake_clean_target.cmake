file(REMOVE_RECURSE
  "libplinger_boltzmann.a"
)
