
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/boltzmann/equations.cpp" "src/boltzmann/CMakeFiles/plinger_boltzmann.dir/equations.cpp.o" "gcc" "src/boltzmann/CMakeFiles/plinger_boltzmann.dir/equations.cpp.o.d"
  "/root/repo/src/boltzmann/gauge.cpp" "src/boltzmann/CMakeFiles/plinger_boltzmann.dir/gauge.cpp.o" "gcc" "src/boltzmann/CMakeFiles/plinger_boltzmann.dir/gauge.cpp.o.d"
  "/root/repo/src/boltzmann/los.cpp" "src/boltzmann/CMakeFiles/plinger_boltzmann.dir/los.cpp.o" "gcc" "src/boltzmann/CMakeFiles/plinger_boltzmann.dir/los.cpp.o.d"
  "/root/repo/src/boltzmann/mode_evolution.cpp" "src/boltzmann/CMakeFiles/plinger_boltzmann.dir/mode_evolution.cpp.o" "gcc" "src/boltzmann/CMakeFiles/plinger_boltzmann.dir/mode_evolution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cosmo/CMakeFiles/plinger_cosmo.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/plinger_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plinger_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
