# Empty dependencies file for plinger_boltzmann.
# This may be replaced when dependencies are built.
