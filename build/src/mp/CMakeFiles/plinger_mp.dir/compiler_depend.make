# Empty compiler generated dependencies file for plinger_mp.
# This may be replaced when dependencies are built.
