file(REMOVE_RECURSE
  "libplinger_mp.a"
)
