file(REMOVE_RECURSE
  "CMakeFiles/plinger_mp.dir/inproc.cpp.o"
  "CMakeFiles/plinger_mp.dir/inproc.cpp.o.d"
  "CMakeFiles/plinger_mp.dir/wrappers.cpp.o"
  "CMakeFiles/plinger_mp.dir/wrappers.cpp.o.d"
  "libplinger_mp.a"
  "libplinger_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plinger_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
