# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_math[1]_include.cmake")
include("/root/repo/build/tests/test_cosmo[1]_include.cmake")
include("/root/repo/build/tests/test_boltzmann[1]_include.cmake")
include("/root/repo/build/tests/test_spectra[1]_include.cmake")
include("/root/repo/build/tests/test_mp[1]_include.cmake")
include("/root/repo/build/tests/test_plinger[1]_include.cmake")
include("/root/repo/build/tests/test_skymap[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
