file(REMOVE_RECURSE
  "CMakeFiles/test_spectra.dir/spectra/test_bandpower.cpp.o"
  "CMakeFiles/test_spectra.dir/spectra/test_bandpower.cpp.o.d"
  "CMakeFiles/test_spectra.dir/spectra/test_cl.cpp.o"
  "CMakeFiles/test_spectra.dir/spectra/test_cl.cpp.o.d"
  "CMakeFiles/test_spectra.dir/spectra/test_cross.cpp.o"
  "CMakeFiles/test_spectra.dir/spectra/test_cross.cpp.o.d"
  "CMakeFiles/test_spectra.dir/spectra/test_matterpower.cpp.o"
  "CMakeFiles/test_spectra.dir/spectra/test_matterpower.cpp.o.d"
  "test_spectra"
  "test_spectra.pdb"
  "test_spectra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spectra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
