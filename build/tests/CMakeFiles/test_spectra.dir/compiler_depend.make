# Empty compiler generated dependencies file for test_spectra.
# This may be replaced when dependencies are built.
