
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spectra/test_bandpower.cpp" "tests/CMakeFiles/test_spectra.dir/spectra/test_bandpower.cpp.o" "gcc" "tests/CMakeFiles/test_spectra.dir/spectra/test_bandpower.cpp.o.d"
  "/root/repo/tests/spectra/test_cl.cpp" "tests/CMakeFiles/test_spectra.dir/spectra/test_cl.cpp.o" "gcc" "tests/CMakeFiles/test_spectra.dir/spectra/test_cl.cpp.o.d"
  "/root/repo/tests/spectra/test_cross.cpp" "tests/CMakeFiles/test_spectra.dir/spectra/test_cross.cpp.o" "gcc" "tests/CMakeFiles/test_spectra.dir/spectra/test_cross.cpp.o.d"
  "/root/repo/tests/spectra/test_matterpower.cpp" "tests/CMakeFiles/test_spectra.dir/spectra/test_matterpower.cpp.o" "gcc" "tests/CMakeFiles/test_spectra.dir/spectra/test_matterpower.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spectra/CMakeFiles/plinger_spectra.dir/DependInfo.cmake"
  "/root/repo/build/src/boltzmann/CMakeFiles/plinger_boltzmann.dir/DependInfo.cmake"
  "/root/repo/build/src/cosmo/CMakeFiles/plinger_cosmo.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/plinger_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plinger_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
