
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/boltzmann/test_equations.cpp" "tests/CMakeFiles/test_boltzmann.dir/boltzmann/test_equations.cpp.o" "gcc" "tests/CMakeFiles/test_boltzmann.dir/boltzmann/test_equations.cpp.o.d"
  "/root/repo/tests/boltzmann/test_gauge.cpp" "tests/CMakeFiles/test_boltzmann.dir/boltzmann/test_gauge.cpp.o" "gcc" "tests/CMakeFiles/test_boltzmann.dir/boltzmann/test_gauge.cpp.o.d"
  "/root/repo/tests/boltzmann/test_k_sweep.cpp" "tests/CMakeFiles/test_boltzmann.dir/boltzmann/test_k_sweep.cpp.o" "gcc" "tests/CMakeFiles/test_boltzmann.dir/boltzmann/test_k_sweep.cpp.o.d"
  "/root/repo/tests/boltzmann/test_layout.cpp" "tests/CMakeFiles/test_boltzmann.dir/boltzmann/test_layout.cpp.o" "gcc" "tests/CMakeFiles/test_boltzmann.dir/boltzmann/test_layout.cpp.o.d"
  "/root/repo/tests/boltzmann/test_los.cpp" "tests/CMakeFiles/test_boltzmann.dir/boltzmann/test_los.cpp.o" "gcc" "tests/CMakeFiles/test_boltzmann.dir/boltzmann/test_los.cpp.o.d"
  "/root/repo/tests/boltzmann/test_mode_evolution.cpp" "tests/CMakeFiles/test_boltzmann.dir/boltzmann/test_mode_evolution.cpp.o" "gcc" "tests/CMakeFiles/test_boltzmann.dir/boltzmann/test_mode_evolution.cpp.o.d"
  "/root/repo/tests/boltzmann/test_tca.cpp" "tests/CMakeFiles/test_boltzmann.dir/boltzmann/test_tca.cpp.o" "gcc" "tests/CMakeFiles/test_boltzmann.dir/boltzmann/test_tca.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/boltzmann/CMakeFiles/plinger_boltzmann.dir/DependInfo.cmake"
  "/root/repo/build/src/cosmo/CMakeFiles/plinger_cosmo.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/plinger_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plinger_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
