# Empty compiler generated dependencies file for test_boltzmann.
# This may be replaced when dependencies are built.
