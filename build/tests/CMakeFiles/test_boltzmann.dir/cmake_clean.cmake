file(REMOVE_RECURSE
  "CMakeFiles/test_boltzmann.dir/boltzmann/test_equations.cpp.o"
  "CMakeFiles/test_boltzmann.dir/boltzmann/test_equations.cpp.o.d"
  "CMakeFiles/test_boltzmann.dir/boltzmann/test_gauge.cpp.o"
  "CMakeFiles/test_boltzmann.dir/boltzmann/test_gauge.cpp.o.d"
  "CMakeFiles/test_boltzmann.dir/boltzmann/test_k_sweep.cpp.o"
  "CMakeFiles/test_boltzmann.dir/boltzmann/test_k_sweep.cpp.o.d"
  "CMakeFiles/test_boltzmann.dir/boltzmann/test_layout.cpp.o"
  "CMakeFiles/test_boltzmann.dir/boltzmann/test_layout.cpp.o.d"
  "CMakeFiles/test_boltzmann.dir/boltzmann/test_los.cpp.o"
  "CMakeFiles/test_boltzmann.dir/boltzmann/test_los.cpp.o.d"
  "CMakeFiles/test_boltzmann.dir/boltzmann/test_mode_evolution.cpp.o"
  "CMakeFiles/test_boltzmann.dir/boltzmann/test_mode_evolution.cpp.o.d"
  "CMakeFiles/test_boltzmann.dir/boltzmann/test_tca.cpp.o"
  "CMakeFiles/test_boltzmann.dir/boltzmann/test_tca.cpp.o.d"
  "test_boltzmann"
  "test_boltzmann.pdb"
  "test_boltzmann[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boltzmann.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
