file(REMOVE_RECURSE
  "CMakeFiles/test_math.dir/math/test_bessel.cpp.o"
  "CMakeFiles/test_math.dir/math/test_bessel.cpp.o.d"
  "CMakeFiles/test_math.dir/math/test_brent.cpp.o"
  "CMakeFiles/test_math.dir/math/test_brent.cpp.o.d"
  "CMakeFiles/test_math.dir/math/test_fft.cpp.o"
  "CMakeFiles/test_math.dir/math/test_fft.cpp.o.d"
  "CMakeFiles/test_math.dir/math/test_legendre.cpp.o"
  "CMakeFiles/test_math.dir/math/test_legendre.cpp.o.d"
  "CMakeFiles/test_math.dir/math/test_ode.cpp.o"
  "CMakeFiles/test_math.dir/math/test_ode.cpp.o.d"
  "CMakeFiles/test_math.dir/math/test_quadrature.cpp.o"
  "CMakeFiles/test_math.dir/math/test_quadrature.cpp.o.d"
  "CMakeFiles/test_math.dir/math/test_rng.cpp.o"
  "CMakeFiles/test_math.dir/math/test_rng.cpp.o.d"
  "CMakeFiles/test_math.dir/math/test_spline.cpp.o"
  "CMakeFiles/test_math.dir/math/test_spline.cpp.o.d"
  "test_math"
  "test_math.pdb"
  "test_math[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
