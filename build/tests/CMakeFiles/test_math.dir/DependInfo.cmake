
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/math/test_bessel.cpp" "tests/CMakeFiles/test_math.dir/math/test_bessel.cpp.o" "gcc" "tests/CMakeFiles/test_math.dir/math/test_bessel.cpp.o.d"
  "/root/repo/tests/math/test_brent.cpp" "tests/CMakeFiles/test_math.dir/math/test_brent.cpp.o" "gcc" "tests/CMakeFiles/test_math.dir/math/test_brent.cpp.o.d"
  "/root/repo/tests/math/test_fft.cpp" "tests/CMakeFiles/test_math.dir/math/test_fft.cpp.o" "gcc" "tests/CMakeFiles/test_math.dir/math/test_fft.cpp.o.d"
  "/root/repo/tests/math/test_legendre.cpp" "tests/CMakeFiles/test_math.dir/math/test_legendre.cpp.o" "gcc" "tests/CMakeFiles/test_math.dir/math/test_legendre.cpp.o.d"
  "/root/repo/tests/math/test_ode.cpp" "tests/CMakeFiles/test_math.dir/math/test_ode.cpp.o" "gcc" "tests/CMakeFiles/test_math.dir/math/test_ode.cpp.o.d"
  "/root/repo/tests/math/test_quadrature.cpp" "tests/CMakeFiles/test_math.dir/math/test_quadrature.cpp.o" "gcc" "tests/CMakeFiles/test_math.dir/math/test_quadrature.cpp.o.d"
  "/root/repo/tests/math/test_rng.cpp" "tests/CMakeFiles/test_math.dir/math/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_math.dir/math/test_rng.cpp.o.d"
  "/root/repo/tests/math/test_spline.cpp" "tests/CMakeFiles/test_math.dir/math/test_spline.cpp.o" "gcc" "tests/CMakeFiles/test_math.dir/math/test_spline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/plinger_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plinger_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
