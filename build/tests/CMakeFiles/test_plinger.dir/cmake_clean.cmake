file(REMOVE_RECURSE
  "CMakeFiles/test_plinger.dir/plinger/test_autotask.cpp.o"
  "CMakeFiles/test_plinger.dir/plinger/test_autotask.cpp.o.d"
  "CMakeFiles/test_plinger.dir/plinger/test_faults.cpp.o"
  "CMakeFiles/test_plinger.dir/plinger/test_faults.cpp.o.d"
  "CMakeFiles/test_plinger.dir/plinger/test_protocol.cpp.o"
  "CMakeFiles/test_plinger.dir/plinger/test_protocol.cpp.o.d"
  "CMakeFiles/test_plinger.dir/plinger/test_records.cpp.o"
  "CMakeFiles/test_plinger.dir/plinger/test_records.cpp.o.d"
  "CMakeFiles/test_plinger.dir/plinger/test_schedule.cpp.o"
  "CMakeFiles/test_plinger.dir/plinger/test_schedule.cpp.o.d"
  "CMakeFiles/test_plinger.dir/plinger/test_virtual_cluster.cpp.o"
  "CMakeFiles/test_plinger.dir/plinger/test_virtual_cluster.cpp.o.d"
  "test_plinger"
  "test_plinger.pdb"
  "test_plinger[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plinger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
