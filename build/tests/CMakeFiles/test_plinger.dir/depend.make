# Empty dependencies file for test_plinger.
# This may be replaced when dependencies are built.
