file(REMOVE_RECURSE
  "CMakeFiles/test_skymap.dir/skymap/test_alm.cpp.o"
  "CMakeFiles/test_skymap.dir/skymap/test_alm.cpp.o.d"
  "CMakeFiles/test_skymap.dir/skymap/test_analysis.cpp.o"
  "CMakeFiles/test_skymap.dir/skymap/test_analysis.cpp.o.d"
  "CMakeFiles/test_skymap.dir/skymap/test_synthesis.cpp.o"
  "CMakeFiles/test_skymap.dir/skymap/test_synthesis.cpp.o.d"
  "test_skymap"
  "test_skymap.pdb"
  "test_skymap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skymap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
