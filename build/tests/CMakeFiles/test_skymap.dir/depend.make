# Empty dependencies file for test_skymap.
# This may be replaced when dependencies are built.
