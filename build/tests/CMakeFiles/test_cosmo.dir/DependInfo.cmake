
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cosmo/test_background.cpp" "tests/CMakeFiles/test_cosmo.dir/cosmo/test_background.cpp.o" "gcc" "tests/CMakeFiles/test_cosmo.dir/cosmo/test_background.cpp.o.d"
  "/root/repo/tests/cosmo/test_nu_density.cpp" "tests/CMakeFiles/test_cosmo.dir/cosmo/test_nu_density.cpp.o" "gcc" "tests/CMakeFiles/test_cosmo.dir/cosmo/test_nu_density.cpp.o.d"
  "/root/repo/tests/cosmo/test_params.cpp" "tests/CMakeFiles/test_cosmo.dir/cosmo/test_params.cpp.o" "gcc" "tests/CMakeFiles/test_cosmo.dir/cosmo/test_params.cpp.o.d"
  "/root/repo/tests/cosmo/test_recombination.cpp" "tests/CMakeFiles/test_cosmo.dir/cosmo/test_recombination.cpp.o" "gcc" "tests/CMakeFiles/test_cosmo.dir/cosmo/test_recombination.cpp.o.d"
  "/root/repo/tests/cosmo/test_reionization.cpp" "tests/CMakeFiles/test_cosmo.dir/cosmo/test_reionization.cpp.o" "gcc" "tests/CMakeFiles/test_cosmo.dir/cosmo/test_reionization.cpp.o.d"
  "/root/repo/tests/cosmo/test_sweeps.cpp" "tests/CMakeFiles/test_cosmo.dir/cosmo/test_sweeps.cpp.o" "gcc" "tests/CMakeFiles/test_cosmo.dir/cosmo/test_sweeps.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cosmo/CMakeFiles/plinger_cosmo.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/plinger_math.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plinger_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
