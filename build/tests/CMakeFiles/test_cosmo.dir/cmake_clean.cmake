file(REMOVE_RECURSE
  "CMakeFiles/test_cosmo.dir/cosmo/test_background.cpp.o"
  "CMakeFiles/test_cosmo.dir/cosmo/test_background.cpp.o.d"
  "CMakeFiles/test_cosmo.dir/cosmo/test_nu_density.cpp.o"
  "CMakeFiles/test_cosmo.dir/cosmo/test_nu_density.cpp.o.d"
  "CMakeFiles/test_cosmo.dir/cosmo/test_params.cpp.o"
  "CMakeFiles/test_cosmo.dir/cosmo/test_params.cpp.o.d"
  "CMakeFiles/test_cosmo.dir/cosmo/test_recombination.cpp.o"
  "CMakeFiles/test_cosmo.dir/cosmo/test_recombination.cpp.o.d"
  "CMakeFiles/test_cosmo.dir/cosmo/test_reionization.cpp.o"
  "CMakeFiles/test_cosmo.dir/cosmo/test_reionization.cpp.o.d"
  "CMakeFiles/test_cosmo.dir/cosmo/test_sweeps.cpp.o"
  "CMakeFiles/test_cosmo.dir/cosmo/test_sweeps.cpp.o.d"
  "test_cosmo"
  "test_cosmo.pdb"
  "test_cosmo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cosmo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
