file(REMOVE_RECURSE
  "CMakeFiles/test_mp.dir/mp/test_inproc.cpp.o"
  "CMakeFiles/test_mp.dir/mp/test_inproc.cpp.o.d"
  "CMakeFiles/test_mp.dir/mp/test_semantics.cpp.o"
  "CMakeFiles/test_mp.dir/mp/test_semantics.cpp.o.d"
  "CMakeFiles/test_mp.dir/mp/test_wrappers.cpp.o"
  "CMakeFiles/test_mp.dir/mp/test_wrappers.cpp.o.d"
  "test_mp"
  "test_mp.pdb"
  "test_mp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
