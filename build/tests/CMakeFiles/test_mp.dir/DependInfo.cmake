
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mp/test_inproc.cpp" "tests/CMakeFiles/test_mp.dir/mp/test_inproc.cpp.o" "gcc" "tests/CMakeFiles/test_mp.dir/mp/test_inproc.cpp.o.d"
  "/root/repo/tests/mp/test_semantics.cpp" "tests/CMakeFiles/test_mp.dir/mp/test_semantics.cpp.o" "gcc" "tests/CMakeFiles/test_mp.dir/mp/test_semantics.cpp.o.d"
  "/root/repo/tests/mp/test_wrappers.cpp" "tests/CMakeFiles/test_mp.dir/mp/test_wrappers.cpp.o" "gcc" "tests/CMakeFiles/test_mp.dir/mp/test_wrappers.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mp/CMakeFiles/plinger_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/plinger_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
